//! Code-generation helpers shared by the workload programs.

use hbat_isa::inst::Cond;

use crate::builder::{Builder, Var};

/// Emits `x = xorshift64(x)` — a fast in-ISA PRNG used by workloads whose
/// originals have data-dependent access patterns. Six ALU operations.
pub fn emit_xorshift(b: &mut Builder, x: Var, tmp: Var) {
    // x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    b.sll(tmp, x, 13);
    b.xor(x, x, tmp);
    b.srl(tmp, x, 7);
    b.xor(x, x, tmp);
    b.sll(tmp, x, 17);
    b.xor(x, x, tmp);
}

/// Emits a counted loop: `body` runs `count` times with `i` descending
/// `count..0`. `i` must be a dedicated counter variable.
pub fn emit_counted_loop<F: FnOnce(&mut Builder)>(b: &mut Builder, i: Var, count: i64, body: F) {
    b.li(i, count);
    let top = b.new_label();
    b.bind(top);
    body(b);
    b.sub(i, i, 1);
    b.br(Cond::Gt, i, 0, top);
}

/// Multiplicative hash: `h = (key * 0x9E3779B97F4A7C15) >> (64 - bits)`.
/// `golden` must hold the constant already (load it once outside loops).
pub fn emit_hash(b: &mut Builder, h: Var, key: Var, golden: Var, bits: u32) {
    b.mul(h, key, golden);
    b.srl(h, h, (64 - bits) as i32);
}

/// The multiplicative-hash constant for [`emit_hash`].
pub const GOLDEN: i64 = 0x9E37_79B9_7F4A_7C15_u64 as i64;

/// Emits a *decision branch*: a data-dependent conditional whose direction
/// is a Weyl-sequence bit of `ctr` (`(ctr * GOLDEN) >> 13`, masked), far
/// beyond what an 8-bit-history GAp predictor can learn. Real programs are
/// full of such input-dependent decisions; the regular synthetic loops
/// need them injected to reach the paper's 80–93 % prediction rates —
/// and, through the engine's wrong-path execution, to generate the
/// speculative translation traffic the paper's issue rates imply.
///
/// Taken with probability `1/(mask+1)`; the taken path bumps `sink`.
/// `golden` must already hold [`GOLDEN`].
pub fn emit_decision(b: &mut Builder, golden: Var, ctr: Var, tmp: Var, sink: Var, mask: i32) {
    b.mul(tmp, ctr, golden);
    b.srl(tmp, tmp, 13);
    b.and(tmp, tmp, mask);
    let skip = b.new_label();
    b.br(Cond::Ne, tmp, 0, skip);
    b.add(sink, sink, 1);
    b.bind(skip);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegBudget;
    use crate::layout::HEAP_BASE;
    use hbat_core::addr::VirtAddr;
    use hbat_isa::executor::Machine;
    use hbat_isa::inst::Width;

    #[test]
    fn xorshift_matches_reference() {
        let mut b = Builder::new(RegBudget::FULL);
        let x = b.ivar("x");
        let t = b.ivar("t");
        let out = b.ivar("out");
        b.li(out, HEAP_BASE as i64);
        b.li(x, 88172645463325252u64 as i64);
        for _ in 0..3 {
            emit_xorshift(&mut b, x, t);
        }
        b.store(x, out, 0, Width::B8);
        let mut m = Machine::new(b.finish().unwrap());
        m.run(1_000, |_| {});
        // Reference implementation.
        let mut r = 88172645463325252u64;
        for _ in 0..3 {
            r ^= r << 13;
            r ^= r >> 7;
            r ^= r << 17;
        }
        assert_eq!(m.memory().read_u64(VirtAddr(HEAP_BASE)), r);
    }

    #[test]
    fn counted_loop_runs_exactly_count_times() {
        let mut b = Builder::new(RegBudget::FULL);
        let i = b.ivar("i");
        let n = b.ivar("n");
        let out = b.ivar("out");
        b.li(out, HEAP_BASE as i64);
        b.li(n, 0);
        emit_counted_loop(&mut b, i, 7, |b| {
            b.add(n, n, 1);
        });
        b.store(n, out, 0, Width::B8);
        let mut m = Machine::new(b.finish().unwrap());
        m.run(1_000, |_| {});
        assert_eq!(m.memory().read_u64(VirtAddr(HEAP_BASE)), 7);
    }

    #[test]
    fn hash_spreads_keys() {
        let mut b = Builder::new(RegBudget::FULL);
        let h = b.ivar("h");
        let k = b.ivar("k");
        let g = b.ivar("g");
        let out = b.ivar("out");
        b.li(out, HEAP_BASE as i64);
        b.li(g, GOLDEN);
        for key in 0..4i64 {
            b.li(k, key);
            emit_hash(&mut b, h, k, g, 16);
            b.store(h, out, (key * 8) as i32, Width::B8);
        }
        let mut m = Machine::new(b.finish().unwrap());
        m.run(1_000, |_| {});
        let hashes: Vec<u64> = (0..4)
            .map(|i| m.memory().read_u64(VirtAddr(HEAP_BASE + i * 8)))
            .collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), 4, "hashes collide: {hashes:?}");
        assert!(hashes.iter().all(|&h| h < (1 << 16)));
    }
}
