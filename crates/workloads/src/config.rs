//! Workload build configuration.

/// How many architected registers the "compiler" (the program builder) may
/// use. The paper's baseline is 32 + 32; Figure 9 rebuilds everything with
/// 8 + 8, which forces heavy spilling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegBudget {
    /// Architected integer registers (including r0 and reserved ones).
    pub int: usize,
    /// Architected floating-point registers.
    pub fp: usize,
}

impl RegBudget {
    /// The baseline 32 int / 32 fp machine (Table 1).
    pub const FULL: RegBudget = RegBudget { int: 32, fp: 32 };
    /// The 8 int / 8 fp machine of Figure 9.
    pub const SMALL: RegBudget = RegBudget { int: 8, fp: 8 };
}

impl Default for RegBudget {
    fn default() -> Self {
        RegBudget::FULL
    }
}

/// Overall problem size: how long programs run and how big their data
/// sets are. `Test` keeps unit tests fast; `Reference` is what the
/// figure-regenerating experiments use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny: thousands of dynamic instructions (unit tests).
    Test,
    /// Reduced: hundreds of thousands of instructions (quick runs).
    Small,
    /// Full experiment size: millions of instructions per benchmark.
    Reference,
}

impl Scale {
    /// A scale-dependent value: picks `(test, small, reference)`.
    pub fn pick(self, test: u64, small: u64, reference: u64) -> u64 {
        match self {
            Scale::Test => test,
            Scale::Small => small,
            Scale::Reference => reference,
        }
    }
}

/// Everything a workload generator needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadConfig {
    /// Register budget for the builder's allocator.
    pub regs: RegBudget,
    /// Problem size.
    pub scale: Scale,
    /// Seed for input-data generation (not for anything timing-related).
    pub seed: u64,
}

impl WorkloadConfig {
    /// Baseline configuration at the given scale.
    pub fn new(scale: Scale) -> Self {
        WorkloadConfig {
            regs: RegBudget::FULL,
            scale,
            seed: 0x5EED_1996,
        }
    }

    /// Same configuration with the Figure-9 small register file.
    #[must_use]
    pub fn with_small_regs(mut self) -> Self {
        self.regs = RegBudget::SMALL;
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::new(Scale::Small)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Test.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Reference.pick(1, 2, 3), 3);
    }

    #[test]
    fn config_builders() {
        let c = WorkloadConfig::new(Scale::Test);
        assert_eq!(c.regs, RegBudget::FULL);
        assert_eq!(c.with_small_regs().regs, RegBudget::SMALL);
        assert_eq!(RegBudget::SMALL.int, 8);
    }
}
