//! Address-space layout shared by all synthetic workloads.
//!
//! Mirrors the classic Unix process layout the paper's benchmarks ran
//! under: a global/static region, a heap, and a downward-growing stack far
//! above both. Keeping the regions far apart means stack, global, and heap
//! traffic land on disjoint virtual pages, which matters for every TLB
//! experiment.

/// Base of the global (static data) region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;

/// Base of the heap region (workload data structures).
pub const HEAP_BASE: u64 = 0x2000_0000;

/// Initial stack pointer. Spill slots grow upward from here in this
/// simplified single-frame model.
pub const STACK_BASE: u64 = 0x7F00_0000;

/// A bump allocator over the heap region, used by workload generators to
/// lay out their data structures at build time.
#[derive(Debug, Clone)]
pub struct HeapLayout {
    next: u64,
}

impl HeapLayout {
    /// Starts allocating at [`HEAP_BASE`].
    pub fn new() -> Self {
        HeapLayout { next: HEAP_BASE }
    }

    /// Reserves `bytes` bytes aligned to `align` and returns the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        base
    }

    /// Total bytes of heap reserved so far.
    pub fn used(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

impl Default for HeapLayout {
    fn default() -> Self {
        HeapLayout::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let regions = [GLOBAL_BASE, HEAP_BASE, STACK_BASE];
        assert!(regions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn heap_allocations_do_not_overlap() {
        let mut h = HeapLayout::new();
        let a = h.alloc(100, 8);
        let b = h.alloc(50, 8);
        assert!(a + 100 <= b);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
    }

    #[test]
    fn alignment_respected() {
        let mut h = HeapLayout::new();
        h.alloc(3, 1);
        let b = h.alloc(64, 4096);
        assert_eq!(b % 4096, 0);
        assert!(h.used() >= 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_rejected() {
        HeapLayout::new().alloc(8, 3);
    }
}
