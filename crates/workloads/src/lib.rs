//! # hbat-workloads — the synthetic benchmark suite
//!
//! Ten programs mimicking the memory behaviour of the paper's benchmarks
//! (Table 3): Compress, Doduc, Espresso, GCC, Ghostscript, MPEG_play,
//! Perl, TFFT, Tomcatv, and Xlisp. Programs are written in the `hbat-isa`
//! instruction set through a [`builder::Builder`] whose register assigner
//! spills to the stack when the architected register budget is exhausted —
//! which is how the paper's few-registers experiment (Figure 9) is
//! reproduced.
//!
//! ```
//! use hbat_workloads::config::{Scale, WorkloadConfig};
//! use hbat_workloads::suite::Benchmark;
//!
//! let w = Benchmark::Espresso.build(&WorkloadConfig::new(Scale::Test));
//! let trace = w.trace();
//! assert!(trace.iter().any(|t| t.is_mem()));
//! ```

pub mod builder;
pub mod config;
pub mod layout;
pub mod programs;
pub mod suite;
pub mod util;

pub use builder::{Builder, Label, Rhs, Var};
pub use config::{RegBudget, Scale, WorkloadConfig};
pub use suite::{Benchmark, Workload};
