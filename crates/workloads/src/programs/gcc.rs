//! `GCC` analogue: compiler symbol-table and tree manipulation.
//!
//! Profile: pointer chasing over a few-hundred-kilobyte binary search tree
//! with data-dependent descend-left/descend-right branches (the paper's
//! worst branch-prediction rate, 80.2 %), interleaved with sequential
//! allocation. A compiler works on several structures at once, so four
//! independent walks advance in parallel — that concurrency is what gives
//! GCC its mid-range IPC despite the serial pointer chains.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::emit_xorshift;

const NODE_BYTES: u64 = 40; // key, left, right, payload0, payload1
const WALKS: usize = 4;

/// Host-side BST built into the memory image.
fn build_tree(pool: u64, nodes: usize, key_mask: u64, rng: &mut SmallRng) -> Vec<u8> {
    #[derive(Clone, Copy)]
    struct Node {
        key: u64,
        left: u64,
        right: u64,
    }
    let addr = |i: usize| pool + i as u64 * NODE_BYTES;
    let mut tree: Vec<Node> = Vec::with_capacity(nodes);
    tree.push(Node {
        key: key_mask / 2,
        left: 0,
        right: 0,
    });
    while tree.len() < nodes {
        let key = rng.gen::<u64>() & key_mask;
        let idx = tree.len();
        let mut at = 0usize;
        loop {
            let n = tree[at];
            if key == n.key {
                break; // drop duplicates
            }
            let slot = if key < n.key { n.left } else { n.right };
            if slot == 0 {
                if key < n.key {
                    tree[at].left = addr(idx);
                } else {
                    tree[at].right = addr(idx);
                }
                tree.push(Node {
                    key,
                    left: 0,
                    right: 0,
                });
                break;
            }
            at = ((slot - pool) / NODE_BYTES) as usize;
        }
    }
    tree.iter()
        .flat_map(|n| {
            let mut bytes = Vec::with_capacity(NODE_BYTES as usize);
            bytes.extend_from_slice(&n.key.to_le_bytes());
            bytes.extend_from_slice(&n.left.to_le_bytes());
            bytes.extend_from_slice(&n.right.to_le_bytes());
            bytes.extend_from_slice(&(n.key ^ 0x5555).to_le_bytes());
            bytes.extend_from_slice(&(n.key.wrapping_mul(3)).to_le_bytes());
            bytes
        })
        .collect()
}

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let nodes = cfg.scale.pick(300, 12_000, 20_000) as usize;
    let lookups = cfg.scale.pick(160, 2_400, 9_000) as i64;
    let key_bits = 24u32;
    let key_mask = (1u64 << key_bits) - 1;

    let mut heap = HeapLayout::new();
    let pool = heap.alloc(nodes as u64 * NODE_BYTES, 4096);
    let alloc_area = heap.alloc(8 * lookups as u64 + 4096, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x6CC);
    let image = vec![(pool, build_tree(pool, nodes, key_mask, &mut rng))];

    let mut b = Builder::new(cfg.regs);
    // Hot state first so it keeps registers under the SMALL budget too.
    let node: Vec<_> = (0..WALKS).map(|i| b.ivar(&format!("node{i}"))).collect();
    let key: Vec<_> = (0..WALKS).map(|i| b.ivar(&format!("key{i}"))).collect();
    let root = b.ivar("root");
    let bump = b.ivar("bump");
    let k = b.ivar("k");
    let rnd = b.ivar("rnd");
    let t = b.ivar("t");
    let mask = b.ivar("mask");
    let done = b.ivar("done");
    let total = b.ivar("total");
    let acc = b.ivar("acc");
    let pay = b.ivar("pay");

    b.li(root, pool as i64);
    b.li(bump, alloc_area as i64);
    b.li(rnd, (cfg.seed | 1) as i64);
    b.li(mask, key_mask as i64);
    b.li(done, 0);
    b.li(total, lookups);
    for i in 0..WALKS {
        b.copy(node[i], root);
        emit_xorshift(&mut b, rnd, t);
        b.and(key[i], rnd, mask);
    }

    // Each iteration advances all four walks one tree level; a walk that
    // terminates records its key ("allocates" a result) and restarts with
    // a fresh one.
    let step = b.new_label();
    b.bind(step);
    for i in 0..WALKS {
        let found = b.new_label();
        let go_right = b.new_label();
        let advanced = b.new_label();
        let next = b.new_label();
        b.load(k, node[i], 0, Width::B8);
        // Per-node semantic work: read the payload (symbol attributes)
        // and fold it into a running checksum, as tree passes do.
        b.load(pay, node[i], 24, Width::B8);
        b.load(t, node[i], 32, Width::B8);
        b.xor(pay, pay, t);
        b.srl(t, pay, 7);
        b.add(acc, acc, t);
        b.br(Cond::Eq, k, key[i], found);
        b.br(Cond::Lt, k, key[i], go_right); // key > k → right subtree
        b.load(node[i], node[i], 8, Width::B8);
        b.jump(advanced);
        b.bind(go_right);
        b.load(node[i], node[i], 16, Width::B8);
        b.bind(advanced);
        b.br(Cond::Ne, node[i], 0, next);
        b.bind(found);
        // Lookup finished: record it and start another.
        b.store_postinc(key[i], bump, 8, Width::B8);
        b.add(done, done, 1);
        emit_xorshift(&mut b, rnd, t);
        b.and(key[i], rnd, mask);
        b.copy(node[i], root);
        b.bind(next);
    }
    b.br(Cond::Lt, done, total, step);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "GCC",
        program: b.finish().expect("gcc program is well-formed"),
        mem_image: image,
        // Each lookup is bounded by tree depth ≤ ~4 log n levels.
        max_steps: spill_factor * (lookups as u64 * 64 * 16 + 50_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;

    #[test]
    fn runs_and_chases_pointers() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, _) = profile(&w);
        assert!(trace.len() > 5_000);
        assert!((0.2..0.55).contains(&mem_frac), "mem fraction {mem_frac}");
    }

    #[test]
    fn descend_branches_are_data_dependent() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        // The (k < key) branches at fixed pcs should be near 50/50.
        use std::collections::HashMap;
        let mut per_pc: HashMap<u32, (u64, u64)> = HashMap::new();
        for t in &trace {
            if let Some(br) = t.branch {
                if br.conditional {
                    let e = per_pc.entry(t.pc).or_default();
                    if br.taken {
                        e.0 += 1;
                    } else {
                        e.1 += 1;
                    }
                }
            }
        }
        let balanced = per_pc
            .values()
            .filter(|(t, n)| {
                let total = t + n;
                total > 200 && *t > total / 5 && *n > total / 5
            })
            .count();
        assert!(
            balanced >= WALKS,
            "expected a ~50/50 descend branch per walk, found {balanced}"
        );
    }

    #[test]
    fn four_walks_are_interleaved() {
        // Within one iteration the four node-key loads hit four distinct
        // tree locations: count distinct load pages in a short window.
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        let loads: Vec<u64> = trace
            .iter()
            .filter_map(|t| t.mem.map(|m| m.vaddr.0))
            .collect();
        let mut windows_with_spread = 0;
        for win in loads.windows(8).take(2000) {
            let pages: std::collections::HashSet<u64> = win.iter().map(|a| a >> 8).collect();
            if pages.len() >= 3 {
                windows_with_spread += 1;
            }
        }
        assert!(
            windows_with_spread > 500,
            "walks should interleave: {windows_with_spread}"
        );
    }

    #[test]
    fn small_scale_tree_spans_under_tlb_reach_but_over_small_l1() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(
            (60..200).contains(&pages),
            "tree should be ~100 pages: {pages}"
        );
    }
}
