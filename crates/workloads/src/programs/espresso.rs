//! `Espresso` analogue: two-level logic minimisation.
//!
//! Profile: dense bit-vector operations over cube covers that fit in a few
//! tens of kilobytes, unrolled word-wise inner loops, high issue rate,
//! high reference locality, and well-predicted branches. One of the
//! TLB-friendly programs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;

const WORDS_PER_ROW: u64 = 16; // 128-byte rows (cubes)

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let rows = cfg.scale.pick(8, 56, 110) as i64;
    let row_bytes = WORDS_PER_ROW * 8;

    let mut heap = HeapLayout::new();
    let ma = heap.alloc(rows as u64 * row_bytes, 4096);
    let mb = heap.alloc(rows as u64 * row_bytes, 4096);
    let mout = heap.alloc(rows as u64 * row_bytes, 4096);
    let counts = heap.alloc(4096, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xE5);
    let fill = |rng: &mut SmallRng| -> Vec<u8> {
        (0..rows as u64 * WORDS_PER_ROW)
            .flat_map(|_| (rng.gen::<u64>() & rng.gen::<u64>()).to_le_bytes())
            .collect()
    };
    let image = vec![(ma, fill(&mut rng)), (mb, fill(&mut rng))];

    let mut b = Builder::new(cfg.regs);
    let pa = b.ivar("pa");
    let pb = b.ivar("pb");
    let po = b.ivar("po");
    let cnt = b.ivar("counts");
    let r1 = b.ivar("r1");
    let r2 = b.ivar("r2");
    let w = b.ivar("w");
    let acc = b.ivar("acc");
    let va = b.ivar("va");
    let vb = b.ivar("vb");
    let t = b.ivar("t");
    let disjoint = b.ivar("disjoint");

    b.li(cnt, counts as i64);
    b.li(disjoint, 0);

    // for r1 in rows: for r2 in rows: test whether cube r1 intersects r2
    let l1 = b.new_label();
    b.li(r1, rows);
    b.bind(l1);
    let l2 = b.new_label();
    b.li(r2, rows);
    b.bind(l2);
    // Row pointers: pa = ma + (r1-1)*row_bytes, pb = mb + (r2-1)*row_bytes.
    b.sub(t, r1, 1);
    b.sll(t, t, 7);
    b.li(pa, ma as i64);
    b.add(pa, pa, t);
    b.sub(t, r2, 1);
    b.sll(t, t, 7);
    b.li(pb, mb as i64);
    b.add(pb, pb, t);
    b.li(po, mout as i64);
    b.add(po, po, t);
    b.li(acc, 0);
    // Unrolled ×4 word loop over the row (16 words). Compiled unrolled
    // code addresses the words as displacements off one base register —
    // the independent same-page accesses the piggyback designs exploit.
    let lw = b.new_label();
    b.li(w, (WORDS_PER_ROW / 4) as i64);
    b.bind(lw);
    for u in 0..4i32 {
        b.load(va, pa, u * 8, Width::B8);
        b.load(vb, pb, u * 8, Width::B8);
        b.and(t, va, vb);
        b.or(acc, acc, t);
        if u % 2 == 0 {
            // The minimiser records the intersection cube as it goes.
            b.store(t, po, u * 8, Width::B8);
        } else {
            // Literal-containment check: branches on the cube data.
            b.and(t, t, 1);
            let no_lit = b.new_label();
            b.br(Cond::Ne, t, 0, no_lit);
            b.add(disjoint, disjoint, 1);
            b.bind(no_lit);
        }
    }
    // Column-count folding: a dependent shift/mask reduction like the
    // bit-counting loops all over espresso.
    b.srl(t, acc, 1);
    b.and(acc, acc, t);
    b.srl(t, acc, 2);
    b.or(acc, acc, t);
    b.add(pa, pa, 32);
    b.add(pb, pb, 32);
    b.add(po, po, 32);
    b.sub(w, w, 1);
    b.br(Cond::Gt, w, 0, lw);
    // acc == 0 → the cubes are disjoint (rare with this data).
    let not_disjoint = b.new_label();
    b.br(Cond::Ne, acc, 0, not_disjoint);
    b.add(disjoint, disjoint, 1);
    b.store(disjoint, cnt, 0, Width::B8);
    b.bind(not_disjoint);
    b.sub(r2, r2, 1);
    b.br(Cond::Gt, r2, 0, l2);
    b.sub(r1, r1, 1);
    b.br(Cond::Gt, r1, 0, l1);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Espresso",
        program: b.finish().expect("espresso program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * ((rows as u64).pow(2) * WORDS_PER_ROW * 12 + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;

    #[test]
    fn runs_with_high_locality() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, pages) = profile(&w);
        assert!(trace.len() > 5_000);
        assert!((0.2..0.5).contains(&mem_frac), "mem fraction {mem_frac}");
        assert!(pages < 20, "espresso's cover fits in a few pages: {pages}");
    }

    #[test]
    fn branches_are_mostly_loop_branches() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        let branches = trace.iter().filter(|t| t.is_conditional_branch()).count();
        let taken = trace
            .iter()
            .filter(|t| t.branch.map(|b| b.conditional && b.taken).unwrap_or(false))
            .count();
        // Loop branches dominate, tempered by the cube-data checks.
        let rate = taken as f64 / branches as f64;
        assert!((0.35..0.95).contains(&rate), "taken rate {rate}");
    }

    #[test]
    fn small_scale_stays_tlb_friendly() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(pages < 30, "{pages} pages");
    }
}
