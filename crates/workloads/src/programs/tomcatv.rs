//! `Tomcatv` analogue: vectorised mesh-generation relaxation.
//!
//! Profile: row-major sweeps over ~129×129 double-precision grids with a
//! five-point stencil — regular strides, excellent spatial and temporal
//! locality, almost perfectly predicted loop branches, and heavy FP work.
//! The whole working set fits comfortably in a 128-entry TLB.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    // N×N grid; the paper runs N=129.
    let n = cfg.scale.pick(17, 129, 129) as i64;
    let sweeps = cfg.scale.pick(2, 2, 12) as i64;
    let row_bytes = n * 8;

    let mut heap = HeapLayout::new();
    let x = heap.alloc((n * n * 8) as u64, 4096);
    let rx = heap.alloc((n * n * 8) as u64, 4096);
    let ry = heap.alloc((n * n * 8) as u64, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x70C);
    let x_bytes: Vec<u8> = (0..n * n)
        .flat_map(|_| rng.gen_range(0.0f64..1.0).to_bits().to_le_bytes())
        .collect();
    let image = vec![(x, x_bytes)];

    let mut b = Builder::new(cfg.regs);
    let xb = b.ivar("x");
    let rxb = b.ivar("rx");
    let ryb = b.ivar("ry");
    let s = b.ivar("sweep");
    let j = b.ivar("j");
    let i = b.ivar("i");
    let p = b.ivar("p"); // pointer to x[j][i]
    let q = b.ivar("q"); // pointer to rx[j][i]
    let q2 = b.ivar("q2"); // pointer to ry[j][i]
    let relaxed = b.ivar("relaxed");
    let t2 = b.ivar("t2");
    let c = b.fvar("c"); // centre
    let e = b.fvar("e"); // east/west/north/south accumulator
    let w = b.fvar("w");
    let g = b.fvar("g"); // second residual
    let d = b.fvar("d"); // relaxation accumulator (serial across points)
    let four = b.fvar("four");
    let omega = b.fvar("omega");

    b.li(xb, x as i64);
    b.li(rxb, rx as i64);
    b.li(ryb, ry as i64);
    b.li(relaxed, 0);
    b.fli(four, 4.0);
    b.fli(omega, 0.9375);
    b.fli(d, 1.0);

    let sweep_top = b.new_label();
    b.li(s, sweeps);
    b.bind(sweep_top);
    // for j in 1..n-1
    let row_top = b.new_label();
    b.li(j, n - 2);
    b.bind(row_top);
    // p = x + j*row + 8; q = rx + j*row + 8; q2 = ry + j*row + 8
    b.li(p, row_bytes);
    b.mul(p, p, j);
    b.add(q, p, 0);
    b.add(q2, p, 0);
    b.add(p, p, 8);
    b.add(p, p, xb);
    b.add(q, q, 8);
    b.add(q, q, rxb);
    b.add(q2, q2, 8);
    b.add(q2, q2, ryb);
    // for i in 1..n-1 (pointer walks east)
    let col_top = b.new_label();
    b.li(i, n - 2);
    b.bind(col_top);
    // Five-point stencil via displacement addressing off p.
    b.load(c, p, 0, Width::B8);
    b.load(e, p, 8, Width::B8);
    b.load(w, p, -8, Width::B8);
    b.fadd(e, e, w);
    b.load(w, p, row_bytes as i32, Width::B8);
    b.fadd(e, e, w);
    b.load(w, p, -(row_bytes as i32), Width::B8);
    b.fadd(e, e, w);
    b.fmul(c, c, four);
    b.fsub(e, e, c);
    b.store_postinc(e, q, 8, Width::B8);
    // Second residual: the y-direction terms of the real kernel (more FP
    // work per point, fed by the same loads).
    b.fmul(g, e, omega);
    b.fadd(g, g, w);
    b.fmul(g, g, e);
    b.fsub(g, g, c);
    b.store_postinc(g, q2, 8, Width::B8);
    // Successive over-relaxation accumulator: a serial FP dependence
    // across points, the chain that bounds the real loop's IPC.
    b.fmul(d, d, omega);
    b.fadd(d, d, g);
    // Residual-threshold test: branches on the computed data itself —
    // the mantissa bits of the grid values are effectively random.
    b.load(t2, p, 0, Width::B4);
    b.srl(t2, t2, 12); // mid-mantissa bits: effectively random
    b.and(t2, t2, 3);
    let converged = b.new_label();
    b.br(Cond::Ne, t2, 0, converged);
    b.add(relaxed, relaxed, 1);
    b.bind(converged);
    b.add(p, p, 8);
    b.sub(i, i, 1);
    b.br(Cond::Gt, i, 0, col_top);
    b.sub(j, j, 1);
    b.br(Cond::Gt, j, 0, row_top);
    b.sub(s, s, 1);
    b.br(Cond::Gt, s, 0, sweep_top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Tomcatv",
        program: b.finish().expect("tomcatv program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * ((sweeps * n * n) as u64 * 40 + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;
    use hbat_core::addr::VirtAddr;

    #[test]
    fn runs_with_regular_fp_stencil() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, pages) = profile(&w);
        assert!(trace.len() > 3_000);
        assert!((0.2..0.55).contains(&mem_frac), "mem fraction {mem_frac}");
        assert!(pages < 30, "test grid is small: {pages} pages");
    }

    #[test]
    fn stencil_computes_correct_values() {
        let cfg = WorkloadConfig::new(Scale::Test);
        let w = build(&cfg);
        let mut m = w.instantiate();
        m.run(w.max_steps, |_| {});
        assert!(m.is_halted());
        // Check one interior point of the last sweep against the formula.
        let n = 17i64;
        let x = w.mem_image[0].0;
        let rx = x + ((n * n * 8) as u64).div_ceil(4096) * 4096; // next 4K page
        let get = |addr: u64| m.memory().read_f64(VirtAddr(addr));
        let at = |base: u64, j: i64, i: i64| base + ((j * n + i) * 8) as u64;
        let (j, i) = (5i64, 7i64);
        let expect = get(at(x, j, i + 1))
            + get(at(x, j, i - 1))
            + get(at(x, j + 1, i))
            + get(at(x, j - 1, i))
            - 4.0 * get(at(x, j, i));
        let got = get(at(rx, j, i));
        assert!(
            (expect - got).abs() < 1e-12,
            "stencil mismatch: {expect} vs {got}"
        );
    }

    #[test]
    fn small_scale_fits_in_tlb_reach() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(pages < 110, "tomcatv working set must be modest: {pages}");
    }

    #[test]
    fn loop_branches_predict_well() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        let branches: Vec<_> = trace.iter().filter_map(|t| t.branch).collect();
        let taken = branches.iter().filter(|b| b.taken).count();
        // Counted loops dominate, tempered by the residual-threshold
        // decision branch.
        let rate = taken as f64 / branches.len() as f64;
        assert!((0.35..0.95).contains(&rate), "taken rate {rate}");
    }
}
