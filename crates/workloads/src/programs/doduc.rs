//! `Doduc` analogue: Monte-Carlo nuclear-reactor simulation kernel.
//!
//! Profile: small working set (a few tens of kilobytes of cross-section
//! tables sampled at random), floating-point dependence chains with
//! occasional divides, data-dependent acceptance branches (the real code's
//! 86.6 % prediction rate comes from exactly these), and a modest
//! load/store fraction. TLB behaviour is benign — the whole data set fits
//! easily in a 128-entry TLB.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::emit_xorshift;

const TABLE_DOUBLES: u64 = 4096; // 32 KB per table

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let samples = cfg.scale.pick(3_000, 26_000, 120_000) as i64;

    let mut heap = HeapLayout::new();
    let ta = heap.alloc(8 * TABLE_DOUBLES, 4096);
    let tb = heap.alloc(8 * TABLE_DOUBLES, 4096);
    let bins = heap.alloc(4096, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD0);
    let mut image = Vec::new();
    let fill = |rng: &mut SmallRng| -> Vec<u8> {
        (0..TABLE_DOUBLES)
            .flat_map(|_| rng.gen_range(0.1f64..2.0).to_bits().to_le_bytes())
            .collect()
    };
    image.push((ta, fill(&mut rng)));
    image.push((tb, fill(&mut rng)));

    let mut b = Builder::new(cfg.regs);
    let pa = b.ivar("ta");
    let pb = b.ivar("tb");
    let binp = b.ivar("bins");
    let i = b.ivar("i");
    let rnd = b.ivar("rnd");
    let t = b.ivar("t");
    let idx = b.ivar("idx");
    let cnt = b.ivar("cnt");
    let x = b.fvar("x");
    let y = b.fvar("y");
    let s = b.fvar("s");
    let z = b.fvar("z");
    let c1 = b.fvar("c1");

    b.li(pa, ta as i64);
    b.li(pb, tb as i64);
    b.li(binp, bins as i64);
    b.li(rnd, (cfg.seed | 1) as i64);
    b.fli(s, 1.0);
    b.fli(c1, 1.000001);

    // Monte-Carlo sampling loop: draw, look up cross-sections at random
    // table positions, accumulate, accept/reject, occasionally renormalise.
    let top = b.new_label();
    b.li(i, samples);
    b.bind(top);
    emit_xorshift(&mut b, rnd, t);
    // x = ta[rnd % N]; y = tb[(rnd >> 16) % N]
    b.and(idx, rnd, ((TABLE_DOUBLES - 1) * 8) as i32 & !7);
    b.load_idx(x, pa, idx, Width::B8);
    b.srl(idx, rnd, 16);
    b.and(idx, idx, ((TABLE_DOUBLES - 1) * 8) as i32 & !7);
    b.load_idx(y, pb, idx, Width::B8);
    b.fmul(z, x, y);
    b.fadd(s, s, z);
    // Acceptance test: the sampled randomness decides (≈ 25 % accepted).
    b.and(t, rnd, 3);
    let rejected = b.new_label();
    b.br(Cond::Ne, t, 0, rejected);
    // Accepted: tally into a bin (read-modify-write a small histogram).
    b.srl(idx, rnd, 24);
    b.and(idx, idx, 511 & !7);
    b.load_idx(cnt, binp, idx, Width::B8);
    b.add(cnt, cnt, 1);
    b.store_idx(cnt, binp, idx, Width::B8);
    b.bind(rejected);
    // Every 32 samples: renormalise with a divide (slow FP path).
    b.and(t, i, 31);
    let no_div = b.new_label();
    b.br(Cond::Ne, t, 0, no_div);
    b.fmul(z, s, c1);
    b.fdiv(s, s, z);
    b.bind(no_div);
    b.sub(i, i, 1);
    b.br(Cond::Gt, i, 0, top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Doduc",
        program: b.finish().expect("doduc program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * (samples as u64 * 40 + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;
    use hbat_isa::trace::OpClass;

    #[test]
    fn runs_and_is_fp_heavy_with_small_footprint() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, pages) = profile(&w);
        assert!(trace.len() > 10_000);
        let fp = trace
            .iter()
            .filter(|t| matches!(t.class, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv))
            .count();
        assert!(
            fp as f64 / trace.len() as f64 > 0.08,
            "doduc should be FP-heavy"
        );
        assert!((0.08..0.4).contains(&mem_frac), "mem fraction {mem_frac}");
        assert!(pages < 40, "doduc's working set must stay small: {pages}");
    }

    #[test]
    fn divides_occur_but_rarely() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        let divs = trace.iter().filter(|t| t.class == OpClass::FpDiv).count();
        assert!(divs > 10);
        assert!((divs as f64) < trace.len() as f64 * 0.05);
    }

    #[test]
    fn acceptance_branch_is_data_dependent() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        use std::collections::HashMap;
        let mut per_pc: HashMap<u32, (u64, u64)> = HashMap::new();
        for t in &trace {
            if let Some(br) = t.branch {
                if br.conditional {
                    let e = per_pc.entry(t.pc).or_default();
                    if br.taken {
                        e.0 += 1;
                    } else {
                        e.1 += 1;
                    }
                }
            }
        }
        // The acceptance branch runs ~75/25.
        let mixed = per_pc
            .values()
            .filter(|(tk, nt)| tk + nt > 1000 && *nt > (tk + nt) / 8)
            .count();
        assert!(mixed >= 1, "expected the acceptance branch to vary");
    }

    #[test]
    fn small_scale_fits_in_tlb_reach() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(pages < 128, "doduc must not thrash the TLB: {pages} pages");
    }
}
