//! `Perl` analogue: a bytecode interpreter.
//!
//! Profile: an opcode-dispatch ladder whose direction depends on the
//! bytecode stream (the paper reports 81.2 % branch prediction), an
//! operand stack pushed and popped constantly, and hash-table reads and
//! writes for "variables". The highest per-instruction memory traffic of
//! the integer codes after Xlisp.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::{emit_hash, GOLDEN};

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let ops_len = cfg.scale.pick(600, 8_192, 16_384);
    let rounds = cfg.scale.pick(2, 4, 40) as i64;
    let hash_bits = cfg.scale.pick(10, 15, 16) as u32;

    let mut heap = HeapLayout::new();
    let ops = heap.alloc(ops_len, 4096);
    let stack = heap.alloc(64 * 1024, 4096);
    let hash = heap.alloc(8 << hash_bits, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E51);
    // Opcodes 0..6, weighted toward stack traffic.
    let weights = [3u8, 3, 2, 2, 1, 1, 1];
    let mut code = Vec::with_capacity(ops_len as usize);
    for _ in 0..ops_len {
        let mut pick = rng.gen_range(0..weights.iter().map(|&w| w as u32).sum::<u32>());
        let mut op = 0u8;
        for (k, &w) in weights.iter().enumerate() {
            if pick < w as u32 {
                op = k as u8;
                break;
            }
            pick -= w as u32;
        }
        code.push(op);
    }
    let image = vec![(ops, code)];

    let mut b = Builder::new(cfg.regs);
    let pc = b.ivar("pc");
    let sp = b.ivar("vm_sp");
    let sbase = b.ivar("stack_base");
    let hbase = b.ivar("hash");
    let golden = b.ivar("golden");
    let r = b.ivar("rounds");
    let i = b.ivar("i");
    let op = b.ivar("op");
    let val = b.ivar("val");
    let a = b.ivar("a");
    let h = b.ivar("h");
    let rnd = b.ivar("rnd");
    let t = b.ivar("t");

    b.li(sbase, stack as i64);
    b.li(hbase, hash as i64);
    b.li(golden, GOLDEN);
    b.li(rnd, (cfg.seed | 1) as i64);
    b.li(val, 1);
    b.copy(sp, sbase);
    // Pre-push a few operands so pops never underflow before the guard.
    for _ in 0..8 {
        b.store_postinc(val, sp, 8, Width::B8);
    }

    let round_top = b.new_label();
    b.li(r, rounds);
    b.bind(round_top);
    b.li(pc, ops as i64);
    b.li(i, ops_len as i64);

    let dispatch = b.new_label();
    let next = b.new_label();
    b.bind(dispatch);
    b.load_postinc(op, pc, 1, Width::B1);
    // VM bookkeeping: every dispatch reads and updates interpreter state
    // (op counters, ip bounds) — hot same-page traffic.
    b.load(t, hbase, 16, Width::B8);
    b.add(t, t, 1);
    b.store(t, hbase, 16, Width::B8);
    // The dispatch ladder: op ∈ {0..6}, data-dependent.
    let case_push = b.new_label();
    let case_pop2 = b.new_label();
    let case_hst = b.new_label();
    let case_hld = b.new_label();
    let case_gct = b.new_label();
    let case_arith = b.new_label();
    b.br(Cond::Eq, op, 0, case_push);
    b.br(Cond::Eq, op, 1, case_push);
    b.br(Cond::Eq, op, 2, case_pop2);
    b.br(Cond::Eq, op, 3, case_hst);
    b.br(Cond::Eq, op, 4, case_hld);
    b.br(Cond::Eq, op, 5, case_gct);
    b.jump(case_arith);

    // push: two operands go to the stack (opcode + literal in real VMs)
    b.bind(case_push);
    b.store_postinc(val, sp, 8, Width::B8);
    b.add(val, val, 3);
    b.store_postinc(val, sp, 8, Width::B8);
    // Stack overflow guard: wrap at 32 KB.
    b.sub(t, sp, sbase);
    b.li(a, 32 * 1024);
    b.br(Cond::Lt, t, a, next);
    b.copy(sp, sbase);
    b.add(sp, sp, 64);
    b.jump(next);

    // pop2-add: a = pop(); val = pop(); push(a+val)
    b.bind(case_pop2);
    b.sub(sp, sp, 8);
    b.load(a, sp, 0, Width::B8);
    b.sub(sp, sp, 8);
    b.load(val, sp, 0, Width::B8);
    b.add(val, val, a);
    b.store_postinc(val, sp, 8, Width::B8);
    // Underflow guard.
    b.sub(t, sp, sbase);
    b.li(a, 64);
    b.br(Cond::Gt, t, a, next);
    b.add(sp, sp, 64);
    b.jump(next);

    // hash store: open addressing — probe the slot, then write either it
    // or the overflow slot depending on what is there.
    b.bind(case_hst);
    b.add(rnd, rnd, 1);
    emit_hash(&mut b, h, rnd, golden, hash_bits);
    b.sll(h, h, 3);
    b.load_idx(a, hbase, h, Width::B8);
    let hst_empty = b.new_label();
    b.br(Cond::Eq, a, 0, hst_empty);
    b.add(h, h, 8); // collision: spill to the next slot
    b.bind(hst_empty);
    b.store_idx(val, hbase, h, Width::B8);
    b.jump(next);

    // hash load: probe the slot and the overflow slot.
    b.bind(case_hld);
    b.add(rnd, rnd, 3);
    emit_hash(&mut b, h, rnd, golden, hash_bits);
    b.sll(h, h, 3);
    b.load_idx(val, hbase, h, Width::B8);
    let hld_hit = b.new_label();
    b.br(Cond::Ne, val, 0, hld_hit);
    b.add(h, h, 8);
    b.load_idx(val, hbase, h, Width::B8);
    b.bind(hld_hit);
    b.jump(next);

    // global counters: read-modify-write two hot globals
    b.bind(case_gct);
    b.load(a, hbase, 0, Width::B8);
    b.add(a, a, 1);
    b.store(a, hbase, 0, Width::B8);
    b.load(a, hbase, 8, Width::B8);
    b.add(a, a, val);
    b.store(a, hbase, 8, Width::B8);
    b.jump(next);

    // arithmetic on the top of stack (peek, combine, write back)
    b.bind(case_arith);
    b.load(a, sp, -8, Width::B8);
    b.xor(val, val, a);
    b.store(val, sp, -8, Width::B8);

    b.bind(next);
    b.sub(i, i, 1);
    b.br(Cond::Gt, i, 0, dispatch);
    b.sub(r, r, 1);
    b.br(Cond::Gt, r, 0, round_top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Perl",
        program: b.finish().expect("perl program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * ((rounds as u64) * ops_len * 40 + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;

    #[test]
    fn runs_with_heavy_memory_traffic() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, _) = profile(&w);
        assert!(trace.len() > 5_000);
        assert!(
            (0.2..0.55).contains(&mem_frac),
            "interpreter mem fraction {mem_frac}"
        );
    }

    #[test]
    fn dispatch_ladder_is_unpredictable() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        // The first ladder compare (op == 0?) should go both ways a lot.
        use std::collections::HashMap;
        let mut per_pc: HashMap<u32, (u64, u64)> = HashMap::new();
        for t in &trace {
            if let Some(br) = t.branch {
                if br.conditional {
                    let e = per_pc.entry(t.pc).or_default();
                    if br.taken {
                        e.0 += 1
                    } else {
                        e.1 += 1
                    }
                }
            }
        }
        let mixed = per_pc
            .values()
            .filter(|(tk, nt)| tk + nt > 300 && *tk > 50 && *nt > 50)
            .count();
        assert!(mixed >= 3, "ladder should have several mixed branches");
    }

    #[test]
    fn stack_pointer_stays_in_bounds() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        for t in &trace {
            if let Some(m) = t.mem {
                assert!(
                    m.vaddr.0 >= crate::layout::HEAP_BASE
                        && m.vaddr.0 < crate::layout::STACK_BASE + (1 << 20),
                    "access escaped the address space: {}",
                    m.vaddr
                );
            }
        }
    }
}
