//! `Ghostscript` analogue: PostScript page rendering.
//!
//! Profile: one of the two large data sets (the paper reports ~10 MB) — a
//! multi-megabyte frame buffer filled span by span, with good spatial
//! locality inside a span and a small pattern/object table consulted while
//! filling. Mem fraction is modest; pages are touched in bulk but mostly
//! once per pass.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::{emit_decision, emit_xorshift, GOLDEN};

const LINE_BYTES: u64 = 4096; // one page per scanline (1024 RGBA pixels)

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let lines = cfg.scale.pick(24, 256, 2048) as i64;
    let passes = cfg.scale.pick(1, 1, 2) as i64;

    let mut heap = HeapLayout::new();
    let fb = heap.alloc(lines as u64 * LINE_BYTES, 4096);
    let pattern = heap.alloc(512, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x95);
    let pat: Vec<u8> = (0..512).map(|_| rng.gen()).collect();
    let image = vec![(pattern, pat)];

    let mut b = Builder::new(cfg.regs);
    let fbase = b.ivar("fb");
    let pbase = b.ivar("pattern");
    let pass = b.ivar("pass");
    let y = b.ivar("y");
    let ptr = b.ivar("ptr");
    let len = b.ivar("len");
    let rnd = b.ivar("rnd");
    let t = b.ivar("t");
    let px = b.ivar("px");
    let idx = b.ivar("idx");
    let golden = b.ivar("golden");
    let clipped = b.ivar("clipped");

    b.li(fbase, fb as i64);
    b.li(pbase, pattern as i64);
    b.li(rnd, (cfg.seed | 1) as i64);
    b.li(golden, GOLDEN);
    b.li(clipped, 0);

    let pass_top = b.new_label();
    b.li(pass, passes);
    b.bind(pass_top);
    let line_top = b.new_label();
    b.li(y, lines);
    b.bind(line_top);
    // Span start: ptr = fb + (y-1)*LINE + (rnd % 128)*4; length 96..223 px.
    b.sub(t, y, 1);
    b.sll(t, t, 12);
    b.add(ptr, fbase, 0);
    b.add(ptr, ptr, t);
    emit_xorshift(&mut b, rnd, t);
    b.and(t, rnd, 127);
    b.sll(t, t, 2);
    b.add(ptr, ptr, t);
    b.and(len, rnd, 124);
    b.add(len, len, 96); // multiple of four, 96..220 pixels
                         // Fetch the fill pattern once per span (the "paint" being applied).
    b.and(idx, rnd, 63);
    b.sll(idx, idx, 3);
    b.load_idx(px, pbase, idx, Width::B8);
    // Fill the span unrolled ×4, as a compiler would: independent stores
    // at displacements off one pointer.
    let fill = b.new_label();
    b.bind(fill);
    for u in 0..4i32 {
        // Compositing: read the pixel under the span, blend the pattern
        // with masking and an alpha-style shift, write back.
        b.load(t, ptr, u * 4, Width::B4);
        b.and(t, t, 0x00FF_FFFF);
        b.xor(px, px, t);
        b.srl(t, px, 8);
        b.add(px, px, t);
        b.and(px, px, 0x00FF_FFFF);
        b.store(px, ptr, u * 4, Width::B4);
    }
    b.add(ptr, ptr, 16);
    // Clip test: pixel-data-dependent, occasionally taken.
    emit_decision(&mut b, golden, px, idx, clipped, 7);
    b.sub(len, len, 4);
    b.br(Cond::Gt, len, 0, fill);
    b.sub(y, y, 1);
    b.br(Cond::Gt, y, 0, line_top);
    b.sub(pass, pass, 1);
    b.br(Cond::Gt, pass, 0, pass_top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Ghostscript",
        program: b.finish().expect("ghostscript program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * ((passes * lines) as u64 * 450 * 10 + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;
    use hbat_core::request::AccessKind;

    #[test]
    fn runs_with_compositing_traffic() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, _) = profile(&w);
        assert!(trace.len() > 5_000);
        assert!((0.15..0.45).contains(&mem_frac), "mem fraction {mem_frac}");
        let (mut loads, mut stores) = (0u64, 0u64);
        for t in &trace {
            match t.mem.map(|m| m.kind) {
                Some(AccessKind::Load) => loads += 1,
                Some(AccessKind::Store) => stores += 1,
                None => {}
            }
        }
        let ratio = loads as f64 / stores as f64;
        assert!(
            (0.7..2.5).contains(&ratio),
            "compositing reads roughly as much as it writes: {loads} loads vs {stores} stores"
        );
    }

    #[test]
    fn spans_have_spatial_locality() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        // Consecutive frame-buffer stores should mostly be 4 bytes apart.
        let mut prev: Option<u64> = None;
        let (mut seq, mut total) = (0u64, 0u64);
        for t in &trace {
            if let Some(m) = t.mem {
                if m.kind == AccessKind::Store && m.width == hbat_isa::inst::Width::B4 {
                    if let Some(p) = prev {
                        total += 1;
                        if m.vaddr.0 == p + 4 {
                            seq += 1;
                        }
                    }
                    prev = Some(m.vaddr.0);
                }
            }
        }
        assert!(
            seq as f64 / total as f64 > 0.9,
            "span fills should be sequential ({seq}/{total})"
        );
    }

    #[test]
    fn small_scale_framebuffer_spans_many_pages() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(pages > 200, "frame buffer should be big: {pages} pages");
    }
}
