//! `TFFT` analogue: large real/complex FFT.
//!
//! Profile: the biggest data set of the suite (the paper reports ~40 MB).
//! A bit-reversal permutation scatters accesses across the whole array,
//! then butterfly passes sweep it with long power-of-two strides. Page
//! reuse distance is enormous — with Compress and MPEG_play this is one
//! of the paper's three locality-poor programs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    // log2 of the number of complex points.
    let n_bits = cfg.scale.pick(10, 16, 18) as u32;
    // Only every `step`-th butterfly is computed: the access *pattern*
    // (which pages, in which order) is what the TLB sees; sampling keeps
    // the instruction count tractable.
    let step = cfg.scale.pick(4, 16, 16) as i64;
    let passes = cfg.scale.pick(2, 3, 5) as i64;
    let n = 1u64 << n_bits;

    let mut heap = HeapLayout::new();
    let re = heap.alloc(8 * n, 4096);
    let im = heap.alloc(8 * n, 4096);
    let brt = heap.alloc(16 * (n / step as u64), 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xFF7);
    // Bit-reversal pair table for a sampled, pseudo-randomly ordered index
    // sequence. Entries are (i<<3, bitrev(i)<<3) *byte offsets* ready for
    // indexed addressing.
    let brt_bytes: Vec<u8> = (0..n / step as u64)
        .flat_map(|k| {
            let i = (k.wrapping_mul(7919)) & (n - 1);
            let j = i.reverse_bits() >> (64 - n_bits);
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&(i << 3).to_le_bytes());
            bytes[8..].copy_from_slice(&(j << 3).to_le_bytes());
            bytes
        })
        .collect();
    // Input signal.
    let re_bytes: Vec<u8> = (0..n)
        .flat_map(|_| rng.gen_range(-1.0f64..1.0).to_bits().to_le_bytes())
        .collect();
    let image = vec![(brt, brt_bytes), (re, re_bytes)];

    let mut b = Builder::new(cfg.regs);
    let rbase = b.ivar("re");
    let ibase = b.ivar("im");
    let tptr = b.ivar("brt_ptr");
    let k = b.ivar("k");
    let off_i = b.ivar("off_i");
    let off_j = b.ivar("off_j");
    let p = b.ivar("pass");
    let stride = b.ivar("stride");
    let denorm = b.ivar("denorm");
    let denorm2 = b.ivar("denorm2");
    let xa = b.fvar("xa");
    let xb = b.fvar("xb");
    let ya = b.fvar("ya");
    let yb = b.fvar("yb");
    let tw = b.fvar("tw");

    b.li(rbase, re as i64);
    b.li(ibase, im as i64);
    b.li(denorm, 0);
    b.fli(tw, std::f64::consts::FRAC_1_SQRT_2); // a representative twiddle

    // Phase 1: sampled bit-reversal permutation (random-looking scatter).
    b.li(tptr, brt as i64);
    b.li(k, (n / step as u64) as i64);
    let br_top = b.new_label();
    let no_swap = b.new_label();
    b.bind(br_top);
    b.load_postinc(off_i, tptr, 8, Width::B8);
    b.load_postinc(off_j, tptr, 8, Width::B8);
    // Swap only when j > i (classic guard; ~half taken).
    b.br(Cond::Le, off_j, off_i, no_swap);
    b.load_idx(xa, rbase, off_i, Width::B8);
    b.load_idx(xb, rbase, off_j, Width::B8);
    b.store_idx(xa, rbase, off_j, Width::B8);
    b.store_idx(xb, rbase, off_i, Width::B8);
    b.bind(no_swap);
    b.sub(k, k, 1);
    b.br(Cond::Gt, k, 0, br_top);

    // Phase 2: butterfly passes with halving stride, largest first.
    b.li(stride, (n as i64 / 2) * 8);
    b.li(p, passes);
    let pass_top = b.new_label();
    b.bind(pass_top);
    b.li(off_i, 0);
    b.li(k, (n as i64 / 2) / step);
    let fly = b.new_label();
    b.bind(fly);
    b.add(off_j, off_i, stride);
    // Complex butterfly on (re, im) at offsets i and j.
    b.load_idx(xa, rbase, off_i, Width::B8);
    b.load_idx(xb, rbase, off_j, Width::B8);
    b.load_idx(ya, ibase, off_i, Width::B8);
    b.load_idx(yb, ibase, off_j, Width::B8);
    b.fmul(xb, xb, tw);
    b.fmul(yb, yb, tw);
    b.fadd(xa, xa, xb);
    b.fsub(xb, xa, xb);
    b.fadd(ya, ya, yb);
    b.fsub(yb, ya, yb);
    b.store_idx(xa, rbase, off_i, Width::B8);
    b.store_idx(xb, rbase, off_j, Width::B8);
    b.store_idx(ya, ibase, off_i, Width::B8);
    b.store_idx(yb, ibase, off_j, Width::B8);
    // Denormal/scaling check: branches on the data's mantissa bits.
    b.load_idx(denorm2, rbase, off_i, Width::B4);
    b.srl(denorm2, denorm2, 12); // mid-mantissa bit: a coin flip
    b.and(denorm2, denorm2, 1);
    let normal = b.new_label();
    b.br(Cond::Ne, denorm2, 0, normal);
    b.add(denorm, denorm, 1);
    b.bind(normal);
    b.add(off_i, off_i, (step * 8) as i32);
    b.sub(k, k, 1);
    b.br(Cond::Gt, k, 0, fly);
    // stride /= 2 for the next pass.
    b.srl(stride, stride, 1);
    b.sub(p, p, 1);
    b.br(Cond::Gt, p, 0, pass_top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "TFFT",
        program: b.finish().expect("tfft program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * ((n / step as u64) * (14 + passes as u64 * 30) + 50_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;
    use hbat_isa::trace::OpClass;

    #[test]
    fn runs_with_fp_butterflies() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, _) = profile(&w);
        assert!(trace.len() > 5_000);
        assert!((0.2..0.6).contains(&mem_frac), "mem fraction {mem_frac}");
        let fp = trace
            .iter()
            .filter(|t| matches!(t.class, OpClass::FpAdd | OpClass::FpMul))
            .count();
        assert!(fp > 1_000, "butterflies are FP work");
    }

    #[test]
    fn small_scale_sweeps_many_pages_repeatedly() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (trace, _, pages) = profile(&w);
        // 512 KB re + 512 KB im: each pass revisits ~256 pages.
        assert!(pages > 200, "tfft must sweep far: {pages} pages");
        // Reuse at distance: pages are revisited across phases, so the
        // average visits-per-page is well above one.
        let mem_refs = trace.iter().filter(|t| t.is_mem()).count();
        assert!(
            mem_refs as f64 / pages as f64 > 3.0,
            "{mem_refs} refs over {pages} pages"
        );
    }

    #[test]
    fn bit_reversal_guard_goes_both_ways() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        let (mut taken, mut not) = (0, 0);
        for t in &trace {
            if let Some(br) = t.branch {
                if br.conditional {
                    if br.taken {
                        taken += 1
                    } else {
                        not += 1
                    }
                }
            }
        }
        assert!(taken > 50 && not > 50);
    }
}
