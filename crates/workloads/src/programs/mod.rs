//! The ten benchmark programs (Table 3 analogues).
//!
//! Each module's `build` returns a [`Workload`](crate::suite::Workload)
//! whose memory behaviour mimics the paper's program of the same name:
//! data-set size, reference locality, load/store fraction, and branch
//! predictability. Unit tests in each module pin those properties.

pub mod compress;
pub mod doduc;
pub mod espresso;
pub mod gcc;
pub mod ghostscript;
pub mod mpeg;
pub mod perl;
pub mod tfft;
pub mod tomcatv;
pub mod xlisp;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::suite::Workload;
    use hbat_isa::trace::TraceInst;
    use std::collections::HashSet;

    /// Runs the workload and returns (trace, mem fraction, distinct 4K pages).
    pub fn profile(w: &Workload) -> (Vec<TraceInst>, f64, usize) {
        let trace = w.trace();
        let mem = trace.iter().filter(|t| t.is_mem()).count();
        let pages: HashSet<u64> = trace
            .iter()
            .filter_map(|t| t.mem.map(|m| m.vaddr.0 >> 12))
            .collect();
        let frac = mem as f64 / trace.len() as f64;
        (trace, frac, pages.len())
    }
}
