//! `Compress` analogue: LZW-style compression.
//!
//! Profile being mimicked (Table 3 / Figure 6): sequential pass over an
//! input stream, a running code hashed into a multi-megabyte dictionary
//! probed essentially at random, and a sequential output stream. The
//! scattered dictionary gives Compress its notably poor reference
//! locality — small TLBs thrash on it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::{emit_hash, GOLDEN};

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    // Dictionary: 2^table_bits 8-byte entries. The Small/Reference sizes
    // (256 KB / 512 KB) sit at the edge of a 128-entry 4 KB-page TLB's
    // reach and far beyond a small L1 TLB's — matching Figure 6, where
    // Compress thrashes small TLBs but large TLBs mostly keep up.
    let table_bits = cfg.scale.pick(12, 15, 16) as u32;
    let input_len = cfg.scale.pick(1_500, 22_000, 110_000);

    let mut heap = HeapLayout::new();
    let input = heap.alloc(input_len, 4096);
    let table = heap.alloc(8 << table_bits, 4096);
    let output = heap.alloc(8 * input_len, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xC0);
    // Input: bytes with a skewed distribution (text-like) so hash-table
    // hits and misses both occur.
    let bytes: Vec<u8> = (0..input_len)
        .map(|_| {
            if rng.gen_bool(0.7) {
                rng.gen_range(97..110) // common letters
            } else {
                rng.gen::<u8>()
            }
        })
        .collect();

    let mut b = Builder::new(cfg.regs);
    let in_ptr = b.ivar("in_ptr");
    let out_ptr = b.ivar("out_ptr");
    let tbase = b.ivar("table");
    let golden = b.ivar("golden");
    let code = b.ivar("code");
    let i = b.ivar("i");
    let c = b.ivar("c");
    let h = b.ivar("h");
    let v = b.ivar("v");
    let t = b.ivar("t");
    let hits = b.ivar("hits");

    b.li(in_ptr, input as i64);
    b.li(out_ptr, output as i64);
    b.li(tbase, table as i64);
    b.li(golden, GOLDEN);
    b.li(code, 0);
    b.li(hits, 0);
    b.li(i, input_len as i64);

    let top = b.new_label();
    let stored = b.new_label();
    b.bind(top);
    // c = *in_ptr++
    b.load_postinc(c, in_ptr, 1, Width::B1);
    // code = (code << 5) ^ c  — the running LZW-ish code
    b.sll(t, code, 5);
    b.xor(code, t, c);
    // h = hash(code); probe the dictionary
    emit_hash(&mut b, h, code, golden, table_bits);
    b.sll(t, h, 3);
    b.load_idx(v, tbase, t, Width::B8);
    // hit: count it; miss: install the code (data-dependent branch)
    b.br(Cond::Eq, v, code, stored);
    // Collision chain: probe the next slot before installing.
    b.add(t, t, 8);
    b.load_idx(v, tbase, t, Width::B8);
    b.br(Cond::Eq, v, code, stored);
    b.store_idx(code, tbase, t, Width::B8);
    b.bind(stored);
    // Literal/match decision: depends on the input byte — the kind of
    // data-dependent branch that gives compress its ~90 % prediction rate.
    b.and(t, c, 1);
    let even = b.new_label();
    b.br(Cond::Eq, t, 0, even);
    b.add(hits, hits, 1);
    b.bind(even);
    b.add(hits, hits, 1);
    // emit an output code every iteration (sequential stream)
    b.store_postinc(code, out_ptr, 8, Width::B8);
    // occasionally restart the code (mimics dictionary resets), decided
    // by the code bits themselves
    b.and(t, code, 63);
    let no_reset = b.new_label();
    b.br(Cond::Ne, t, 0, no_reset);
    b.li(code, 0);
    b.bind(no_reset);
    b.sub(i, i, 1);
    b.br(Cond::Gt, i, 0, top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Compress",
        program: b.finish().expect("compress program is well-formed"),
        mem_image: vec![(input, bytes)],
        max_steps: spill_factor * (40 * input_len + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;

    #[test]
    fn runs_to_completion_and_looks_like_compress() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, pages) = profile(&w);
        assert!(trace.len() > 10_000);
        assert!(
            (0.15..0.45).contains(&mem_frac),
            "mem fraction {mem_frac} out of band"
        );
        // Test scale: 32 KB dictionary = 8+ pages, plus streams.
        assert!(pages > 8, "only {pages} pages touched");
    }

    #[test]
    fn small_scale_footprint_exceeds_tlb_reach() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(
            pages > 75,
            "compress must thrash a 128-entry TLB, touched {pages} pages"
        );
    }

    #[test]
    fn both_branch_directions_are_exercised() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        let (mut taken, mut not) = (0u64, 0u64);
        for t in &trace {
            if let Some(br) = t.branch {
                if br.conditional {
                    if br.taken {
                        taken += 1;
                    } else {
                        not += 1;
                    }
                }
            }
        }
        assert!(taken > 100 && not > 100, "taken={taken} not={not}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = build(&WorkloadConfig::new(Scale::Test)).trace();
        let c = build(&WorkloadConfig::new(Scale::Test)).trace();
        assert_eq!(a.len(), c.len());
        assert_eq!(a[100], c[100]);
    }
}
