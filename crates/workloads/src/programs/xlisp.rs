//! `Xlisp` analogue: a Lisp interpreter's heap behaviour.
//!
//! Profile: the highest load/store fraction in the suite (the paper
//! reports 0.48 committed memory operations per instruction) — cons-cell
//! allocation, list construction and traversal, and a periodic garbage
//! collection mark/sweep phase over a megabyte-scale cell pool.

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::{emit_xorshift, GOLDEN};

const CELL_BYTES: i64 = 16; // car, cdr

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let cells = cfg.scale.pick(2_048, 24_000, 90_000) as i64;
    let rounds = cfg.scale.pick(2, 3, 10) as i64;
    let list_len = 32i64;

    let mut heap = HeapLayout::new();
    let pool = heap.alloc((cells * CELL_BYTES) as u64, 4096);

    let mut b = Builder::new(cfg.regs);
    let pbase = b.ivar("pool");
    let bump = b.ivar("bump");
    let head = b.ivar("head");
    let cell = b.ivar("cell");
    let r = b.ivar("round");
    let k = b.ivar("k");
    let len = b.ivar("len");
    let val = b.ivar("val");
    let sum = b.ivar("sum");
    let rnd = b.ivar("rnd");
    let t = b.ivar("t");
    let limit = b.ivar("limit");
    let golden = b.ivar("golden");
    let tagged = b.ivar("tagged");

    b.li(pbase, pool as i64);
    b.li(limit, (pool + (cells * CELL_BYTES) as u64) as i64);
    b.li(golden, GOLDEN);
    b.li(tagged, 0);
    b.li(rnd, (cfg.seed | 1) as i64);
    b.li(val, 1);

    let round_top = b.new_label();
    b.li(r, rounds);
    b.bind(round_top);
    b.copy(bump, pbase);
    b.li(sum, 0);

    // Allocation phase: build (cells / list_len) lists of list_len conses.
    let build_list = b.new_label();
    b.li(k, cells / list_len);
    b.bind(build_list);
    b.li(head, 0);
    let cons_loop = b.new_label();
    b.li(len, list_len);
    b.bind(cons_loop);
    // cell = bump; bump += 16; cell.car = val; cell.cdr = head; head = cell
    b.copy(cell, bump);
    b.add(bump, bump, CELL_BYTES as i32);
    b.store(val, cell, 0, Width::B8);
    b.store(head, cell, 8, Width::B8);
    b.copy(head, cell);
    b.add(val, val, 7);
    // Type-tag dispatch: reads the neighbour cell's tag and branches on
    // it — value-dependent branching all over a Lisp heap; the taken
    // path updates the tag in place (rplaca-style).
    b.load(t, cell, -16, Width::B8);
    b.srl(t, t, 2);
    b.and(t, t, 1);
    let untagged = b.new_label();
    b.br(Cond::Ne, t, 0, untagged);
    b.add(tagged, tagged, 1);
    b.store(tagged, cell, 0, Width::B8);
    b.bind(untagged);
    b.sub(len, len, 1);
    b.br(Cond::Gt, len, 0, cons_loop);

    // Traverse (mark) the freshly built list: chase cdr, sum cars.
    let mark = b.new_label();
    let mark_done = b.new_label();
    b.copy(cell, head);
    b.bind(mark);
    b.br(Cond::Eq, cell, 0, mark_done);
    b.load(t, cell, 0, Width::B8);
    b.add(sum, sum, t);
    b.load(cell, cell, 8, Width::B8);
    b.jump(mark);
    b.bind(mark_done);

    // Mutation: poke a random cell in the pool (GC write barrier /
    // rplaca-style update) — this is what spreads the footprint.
    let poke_mask = ((cells as u64).next_power_of_two() / 2 - 1) as i64;
    emit_xorshift(&mut b, rnd, t);
    b.li(t, poke_mask);
    b.and(t, rnd, t);
    b.sll(t, t, 4);
    b.load_idx(val, pbase, t, Width::B8);
    b.add(val, val, 1);
    b.store_idx(val, pbase, t, Width::B8);

    b.sub(k, k, 1);
    b.br(Cond::Gt, k, 0, build_list);

    // Sweep phase: linear scan of the pool clearing the low bit of cars.
    let sweep = b.new_label();
    b.copy(cell, pbase);
    b.bind(sweep);
    b.load(t, cell, 0, Width::B8);
    b.srl(t, t, 1);
    b.sll(t, t, 1);
    b.store(t, cell, 0, Width::B8);
    b.add(cell, cell, (CELL_BYTES * 8) as i32); // sample every 8th cell
    b.br(Cond::Lt, cell, limit, sweep);

    b.sub(r, r, 1);
    b.br(Cond::Gt, r, 0, round_top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "Xlisp",
        program: b.finish().expect("xlisp program is well-formed"),
        mem_image: Vec::new(),
        max_steps: spill_factor * ((rounds * cells) as u64 * 20 + 50_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;

    #[test]
    fn runs_with_the_highest_memory_fraction() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, _) = profile(&w);
        assert!(trace.len() > 10_000);
        assert!(
            mem_frac > 0.22,
            "xlisp should be among the most memory-bound: {mem_frac}"
        );
    }

    #[test]
    fn list_traversal_is_pointer_chasing() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        // cdr loads at offset 8 exist in volume.
        let cdr_loads = trace
            .iter()
            .filter(|t| {
                t.mem
                    .map(|m| m.kind == hbat_core::request::AccessKind::Load && m.offset == 8)
                    .unwrap_or(false)
            })
            .count();
        assert!(cdr_loads > 1_000, "only {cdr_loads} cdr loads");
    }

    #[test]
    fn small_scale_pool_spans_many_pages() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        assert!(pages > 80, "cell pool should be ~400 KB: {pages} pages");
    }
}
