//! `MPEG_play` analogue: software video decoding.
//!
//! Profile: a sequentially consumed bitstream, motion-compensated reads
//! from a reference frame at data-dependent positions, and 8×8-block
//! writes into the current frame. Blocks land all over the frames, so
//! pages are cycled through quickly — with Compress and TFFT this is one
//! of the three programs the paper singles out for poor locality.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hbat_isa::inst::{Cond, Width};

use crate::builder::Builder;
use crate::config::WorkloadConfig;
use crate::layout::HeapLayout;
use crate::suite::Workload;
use crate::util::emit_xorshift;

const FRAME_W: u64 = 512; // bytes per pixel row

/// Builds the workload.
///
/// # Panics
///
/// Panics if the generated program fails validation — a bug in this
/// builder, never a consequence of the caller's configuration.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let frame_h = cfg.scale.pick(32, 512, 1024);
    let blocks = cfg.scale.pick(80, 3_400, 14_000) as i64;

    let frame_bytes = FRAME_W * frame_h;
    let mut heap = HeapLayout::new();
    let stream = heap.alloc(blocks as u64 * 8 + 64, 4096);
    let ref_frame = heap.alloc(frame_bytes, 4096);
    let cur_frame = heap.alloc(frame_bytes, 4096);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x3E6);
    let image = vec![
        (
            stream,
            (0..blocks as usize * 8 + 64).map(|_| rng.gen()).collect(),
        ),
        (
            ref_frame,
            (0..frame_bytes as usize).map(|_| rng.gen()).collect(),
        ),
    ];

    // Block position mask: frame holds (W/8) × (H/8) blocks.
    let bx_mask = (FRAME_W / 8 - 1) as i64;
    let by_mask = (frame_h / 8 - 1) as i64;

    let mut b = Builder::new(cfg.regs);
    let sptr = b.ivar("stream");
    let refb = b.ivar("ref");
    let curb = b.ivar("cur");
    let n = b.ivar("n");
    let rnd = b.ivar("rnd");
    let t = b.ivar("t");
    let coef = b.ivar("coef");
    let off = b.ivar("off");
    let row = b.ivar("row");
    let rv = b.ivar("rv");
    let cv = b.ivar("cv");

    b.li(sptr, stream as i64);
    b.li(refb, ref_frame as i64);
    b.li(curb, cur_frame as i64);
    b.li(rnd, (cfg.seed | 1) as i64);

    let top = b.new_label();
    b.li(n, blocks);
    b.bind(top);
    // Read 8 coefficient bytes from the bitstream (sequential).
    b.load_postinc(coef, sptr, 8, Width::B8);
    // Choose the block position (bx, by) from the decoded data — block
    // order in a real decoder is raster order per slice, but motion
    // vectors scatter the *reference* reads; scattering both is the
    // worst-case the paper's numbers suggest.
    emit_xorshift(&mut b, rnd, t);
    b.and(t, rnd, bx_mask as i32);
    b.sll(off, t, 3); // bx*8
    b.srl(t, rnd, 16);
    b.and(t, t, by_mask as i32);
    b.sll(t, t, 3 + 9); // by*8 rows × 512 B/row
    b.add(off, off, t);
    // Data-dependent coding decision: some blocks are copied, others get
    // the residual applied (the coefficient bit is effectively random, so
    // this branch mispredicts like a real decoder's coding-mode checks).
    let copy_block = b.new_label();
    b.and(t, coef, 1);
    b.br(Cond::Eq, t, 0, copy_block);
    b.xor(coef, coef, rnd);
    b.bind(copy_block);
    // Decode the 8 rows of the block: cur = ref ^ coefficients.
    b.li(row, 8);
    let rows = b.new_label();
    b.bind(rows);
    b.load_idx(rv, refb, off, Width::B8);
    b.xor(cv, rv, coef);
    b.store_idx(cv, curb, off, Width::B8);
    b.add(off, off, FRAME_W as i32); // next pixel row of the block
    b.sub(row, row, 1);
    b.br(Cond::Gt, row, 0, rows);
    b.sub(n, n, 1);
    b.br(Cond::Gt, n, 0, top);

    // Spilling under a small register budget multiplies the dynamic
    // instruction count (the paper saw up to 346 % more memory ops).
    let spill_factor: u64 = if cfg.regs.int < 16 { 8 } else { 1 };
    Workload {
        name: "MPEG_play",
        program: b.finish().expect("mpeg program is well-formed"),
        mem_image: image,
        max_steps: spill_factor * (blocks as u64 * 8 * 20 + 10_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::programs::testutil::profile;

    #[test]
    fn runs_with_block_structured_traffic() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let (trace, mem_frac, _) = profile(&w);
        assert!(trace.len() > 5_000);
        assert!((0.2..0.5).contains(&mem_frac), "mem fraction {mem_frac}");
    }

    #[test]
    fn small_scale_cycles_many_pages() {
        let w = build(&WorkloadConfig::new(Scale::Small));
        let (_, _, pages) = profile(&w);
        // Two 256 KB frames + stream: far beyond 128 TLB entries.
        assert!(pages > 100, "mpeg must cycle pages: {pages}");
    }

    #[test]
    fn decode_is_read_modify_write() {
        let w = build(&WorkloadConfig::new(Scale::Test));
        let trace = w.trace();
        use hbat_core::request::AccessKind;
        let loads = trace
            .iter()
            .filter(|t| t.mem.map(|m| m.kind == AccessKind::Load).unwrap_or(false))
            .count();
        let stores = trace
            .iter()
            .filter(|t| t.mem.map(|m| m.kind == AccessKind::Store).unwrap_or(false))
            .count();
        // ~9 loads (8 ref rows + 1 stream read) per 8 stores.
        let ratio = loads as f64 / stores as f64;
        assert!((0.8..1.6).contains(&ratio), "load/store ratio {ratio}");
    }
}
