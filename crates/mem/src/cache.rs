//! Set-associative cache timing model.
//!
//! Models the paper's 32 KB two-way set-associative, write-back,
//! write-allocate caches with 32-byte blocks, a 6-cycle miss latency, and
//! a non-blocking, multi-ported interface (Table 1). Only tags and timing
//! are modelled — data values live in the functional executor.

use hbat_core::addr::PhysAddr;
use hbat_core::cycle::Cycle;

/// Cache configuration.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Cycles from access to hit data (pipelined).
    pub hit_latency: u64,
    /// Additional cycles a miss takes to fill from the next level.
    pub miss_latency: u64,
    /// Simultaneous accesses per cycle.
    pub ports: usize,
}

impl CacheConfig {
    /// Table 1's data cache: 32 KB, 2-way, 32 B blocks, 6-cycle miss,
    /// four ports, non-blocking.
    pub fn table1_dcache() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 2,
            block_bytes: 32,
            hit_latency: 2, // load total latency (Table 1: load/store 2/1)
            miss_latency: 6,
            ports: 4,
        }
    }

    /// Table 1's instruction cache: 32 KB, 2-way, 32 B blocks, 6-cycle
    /// miss, single fetch port.
    pub fn table1_icache() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 2,
            block_bytes: 32,
            hit_latency: 0, // overlapped with fetch
            miss_latency: 6,
            ports: 1,
        }
    }

    fn sets(&self) -> usize {
        (self.size_bytes / self.block_bytes) as usize / self.ways
    }
}

/// Counters accumulated by a [`Cache`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses accepted.
    pub accesses: u64,
    /// Accesses that hit (including hits on in-flight fill blocks).
    pub hits: u64,
    /// Accesses that initiated a fill.
    pub misses: u64,
    /// Misses that merged with an in-flight fill of the same block.
    pub merged: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Accesses rejected for lack of a port.
    pub port_rejects: u64,
}

impl CacheStats {
    /// Miss ratio over accepted accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// When the fill completes (for non-blocking misses); data accessed
    /// before this time waits for it.
    ready_at: Cycle,
    lru_stamp: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Served; data available at `data_at`. `was_miss` tells whether a
    /// fill was initiated (or joined).
    Served {
        /// Cycle the data is available.
        data_at: Cycle,
        /// True if this access missed (initiated or merged into a fill).
        was_miss: bool,
    },
    /// No port free this cycle; retry next cycle.
    NoPort,
}

impl CacheAccess {
    /// The data-ready time, if served.
    pub fn data_at(&self) -> Option<Cycle> {
        match *self {
            CacheAccess::Served { data_at, .. } => Some(data_at),
            CacheAccess::NoPort => None,
        }
    }
}

/// A non-blocking, multi-ported, set-associative cache (timing only).
///
/// # Examples
///
/// ```
/// use hbat_core::addr::PhysAddr;
/// use hbat_core::cycle::Cycle;
/// use hbat_mem::cache::{Cache, CacheAccess, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::table1_dcache());
/// c.begin_cycle(Cycle(0));
/// let first = c.access(PhysAddr(0x100), false);
/// let again = {
///     c.begin_cycle(Cycle(20));
///     c.access(PhysAddr(0x104), false) // same block, now resident
/// };
/// assert!(matches!(first, CacheAccess::Served { was_miss: true, .. }));
/// assert!(matches!(again, CacheAccess::Served { was_miss: false, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines in one flat array, `ways` entries per set (set-major):
    /// one indexed slice per access instead of a nested-vector pointer
    /// chase — this sits on the engine's per-access hot path.
    lines: Vec<Option<Line>>,
    /// `log2(block_bytes)` — block number extraction is a shift, not a
    /// hardware division by the runtime block size.
    block_shift: u32,
    set_mask: usize,
    tag_shift: u32,
    stats: CacheStats,
    now: Cycle,
    ports_used: usize,
    lru_counter: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/ports, non-power-of
    /// two sets, ...).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.ports > 0, "degenerate cache geometry");
        assert!(cfg.block_bytes.is_power_of_two(), "block size must be 2^k");
        let sets = cfg.sets();
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be 2^k");
        Cache {
            lines: vec![None; sets * cfg.ways],
            block_shift: cfg.block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            cfg,
            stats: CacheStats::default(),
            now: Cycle::ZERO,
            ports_used: 0,
            lru_counter: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Lines still being filled at `now` — the cache's MSHR-equivalent
    /// occupancy, an observability sampling probe.
    pub fn inflight_fills(&self, now: Cycle) -> usize {
        self.lines
            .iter()
            .flatten()
            .filter(|l| l.ready_at > now)
            .count()
    }

    /// Opens a new cycle, freeing the ports.
    pub fn begin_cycle(&mut self, now: Cycle) {
        debug_assert!(now >= self.now, "time must not run backwards");
        self.now = now;
        self.ports_used = 0;
    }

    /// Start of the set's way range in `lines`, plus the block tag.
    #[inline(always)]
    fn index_of(&self, addr: PhysAddr) -> (usize, u64) {
        let block = addr.0 >> self.block_shift;
        let set = (block as usize) & self.set_mask;
        let tag = block >> self.tag_shift;
        (set * self.cfg.ways, tag)
    }

    /// Accesses `addr`; `is_store` marks the line dirty.
    pub fn access(&mut self, addr: PhysAddr, is_store: bool) -> CacheAccess {
        if self.ports_used == self.cfg.ports {
            self.stats.port_rejects += 1;
            return CacheAccess::NoPort;
        }
        self.ports_used += 1;
        self.stats.accesses += 1;
        self.lru_counter += 1;
        let (base, tag) = self.index_of(addr);
        let now = self.now;
        let hit_latency = self.cfg.hit_latency;
        let lru_counter = self.lru_counter;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        // Hit (possibly on a block still being filled).
        if let Some(line) = ways.iter_mut().flatten().find(|l| l.tag == tag) {
            line.dirty |= is_store;
            line.lru_stamp = lru_counter;
            let still_filling = line.ready_at > now;
            let data_at = line.ready_at.max(now + hit_latency);
            if still_filling {
                self.stats.merged += 1;
                self.stats.misses += 1;
            } else {
                self.stats.hits += 1;
            }
            return CacheAccess::Served {
                data_at,
                was_miss: still_filling,
            };
        }

        // Miss: pick a victim (invalid way first, then LRU).
        self.stats.misses += 1;
        let victim = match ways.iter().position(Option::is_none) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.map(|l| l.lru_stamp).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("cache set has ways"),
        };
        if let Some(old) = ways[victim] {
            if old.dirty {
                self.stats.writebacks += 1;
            }
        }
        let ready_at = now + self.cfg.hit_latency + self.cfg.miss_latency;
        ways[victim] = Some(Line {
            tag,
            dirty: is_store,
            ready_at,
            lru_stamp: lru_counter,
        });
        CacheAccess::Served {
            data_at: ready_at,
            was_miss: true,
        }
    }

    /// Installs the block containing `addr` as a clean, fill-complete,
    /// most-recently-used line, without touching timing, ports, or
    /// statistics — the warm-state restore path uses this to rebuild
    /// cache contents at a checkpoint boundary. If the block is already
    /// resident only its recency is refreshed. Victim selection matches
    /// [`Cache::access`] (invalid way first, then LRU), so installing a
    /// warm set in LRU order reproduces the recency ordering the
    /// snapshotting run had.
    pub fn warm_insert(&mut self, addr: PhysAddr) {
        self.lru_counter += 1;
        let lru_counter = self.lru_counter;
        let (base, tag) = self.index_of(addr);
        let ways = &mut self.lines[base..base + self.cfg.ways];
        if let Some(line) = ways.iter_mut().flatten().find(|l| l.tag == tag) {
            line.lru_stamp = lru_counter;
            return;
        }
        let victim = match ways.iter().position(Option::is_none) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.map(|l| l.lru_stamp).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("cache set has ways"),
        };
        ways[victim] = Some(Line {
            tag,
            dirty: false,
            ready_at: Cycle::ZERO,
            lru_stamp: lru_counter,
        });
    }

    /// Of a warm replay list (distinct block addresses, oldest-first LRU
    /// order), the blocks that would still be resident after replaying
    /// the whole list through [`Cache::warm_insert`]: the newest `ways`
    /// blocks of each set, returned still oldest-first. Replaying only
    /// the survivors produces the same final tags and the same relative
    /// LRU order as replaying everything — the warm-install path uses
    /// this to skip the inserts that LRU replacement would immediately
    /// undo (a warm list is capped well above one cache's capacity).
    pub fn warm_survivors(&self, addrs: &[u64]) -> Vec<u64> {
        let sets = self.set_mask + 1;
        let ways = self.cfg.ways as u8;
        let mut taken = vec![0u8; sets];
        let mut keep = Vec::with_capacity(addrs.len().min(sets * self.cfg.ways));
        for &pa in addrs.iter().rev() {
            let set = ((pa >> self.block_shift) as usize) & self.set_mask;
            if taken[set] < ways {
                taken[set] += 1;
                keep.push(pa);
            }
        }
        keep.reverse();
        keep
    }

    /// Probes without touching timing, ports, or stats (tests only).
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let (base, tag) = self.index_of(addr);
        self.lines[base..base + self.cfg.ways]
            .iter()
            .flatten()
            .any(|l| l.tag == tag)
    }

    /// Empties the cache (statistics are preserved).
    pub fn flush(&mut self) {
        self.lines.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            block_bytes: 32,
            hit_latency: 2,
            miss_latency: 6,
            ports: 2,
        })
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut c = small();
        c.begin_cycle(Cycle(0));
        match c.access(PhysAddr(0x40), false) {
            CacheAccess::Served { data_at, was_miss } => {
                assert!(was_miss);
                assert_eq!(data_at, Cycle(8)); // 2 + 6
            }
            other => panic!("{other:?}"),
        }
        c.begin_cycle(Cycle(10));
        match c.access(PhysAddr(0x44), false) {
            CacheAccess::Served { data_at, was_miss } => {
                assert!(!was_miss);
                assert_eq!(data_at, Cycle(12)); // hit latency 2
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn access_during_fill_waits_for_the_fill() {
        let mut c = small();
        c.begin_cycle(Cycle(0));
        c.access(PhysAddr(0x40), false);
        c.begin_cycle(Cycle(3));
        match c.access(PhysAddr(0x48), false) {
            CacheAccess::Served { data_at, was_miss } => {
                assert!(was_miss, "merged into the in-flight fill");
                assert_eq!(data_at, Cycle(8), "waits for the fill, no new miss");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().merged, 1);
    }

    #[test]
    fn ports_limit_per_cycle() {
        let mut c = small();
        c.begin_cycle(Cycle(0));
        assert!(c.access(PhysAddr(0x000), false).data_at().is_some());
        assert!(c.access(PhysAddr(0x100), false).data_at().is_some());
        assert_eq!(c.access(PhysAddr(0x200), false), CacheAccess::NoPort);
        assert_eq!(c.stats().port_rejects, 1);
        c.begin_cycle(Cycle(1));
        assert!(c.access(PhysAddr(0x200), false).data_at().is_some());
    }

    #[test]
    fn lru_within_set_and_writeback_of_dirty_victims() {
        let mut c = small(); // 16 sets; same set every 512 bytes
        let set_stride = 512;
        c.begin_cycle(Cycle(0));
        c.access(PhysAddr(0), true); // dirty
        c.begin_cycle(Cycle(20));
        c.access(PhysAddr(set_stride), false);
        c.begin_cycle(Cycle(40));
        c.access(PhysAddr(0), false); // touch to make way-0 MRU
        c.begin_cycle(Cycle(60));
        c.access(PhysAddr(2 * set_stride), false); // evicts set_stride (clean)
        assert_eq!(c.stats().writebacks, 0);
        assert!(c.contains(PhysAddr(0)));
        assert!(!c.contains(PhysAddr(set_stride)));
        c.begin_cycle(Cycle(80));
        c.access(PhysAddr(3 * set_stride), false); // evicts 0 (dirty)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn warm_survivors_match_a_full_replay() {
        // 16 sets, 2 ways: a warm list far over capacity collapses to
        // the newest two blocks per set, and replaying only those leaves
        // the cache in the same state as replaying everything.
        // 200 distinct blocks (i*73 mod 1024 is a permutation cycle)
        // scattered over all 16 sets — ~12 candidates per 2-way set.
        let list: Vec<u64> = (0..200u64).map(|i| ((i * 73) % 1024) * 32).collect();
        let mut full = small();
        for &pa in &list {
            full.warm_insert(PhysAddr(pa));
        }
        let filtered_list = small().warm_survivors(&list);
        assert!(filtered_list.len() <= 32, "at most ways per set survive");
        let mut filtered = small();
        for &pa in &filtered_list {
            filtered.warm_insert(PhysAddr(pa));
        }
        for &pa in &list {
            assert_eq!(
                full.contains(PhysAddr(pa)),
                filtered.contains(PhysAddr(pa)),
                "residency diverged at {pa:#x}"
            );
        }
        // Survivors keep list order (oldest-first), so LRU replay works.
        let mut sorted = filtered_list.clone();
        sorted.sort_by_key(|pa| list.iter().position(|x| x == pa).unwrap());
        assert_eq!(filtered_list, sorted);
    }

    #[test]
    fn inflight_fills_tracks_pending_misses() {
        let mut c = small();
        assert_eq!(c.inflight_fills(Cycle(0)), 0);
        c.begin_cycle(Cycle(0));
        c.access(PhysAddr(0x000), false); // fills until cycle 8
        c.access(PhysAddr(0x800), false);
        assert_eq!(c.inflight_fills(Cycle(0)), 2);
        assert_eq!(c.inflight_fills(Cycle(7)), 2);
        assert_eq!(c.inflight_fills(Cycle(8)), 0, "fills landed");
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut c = small();
        c.begin_cycle(Cycle(0));
        c.access(PhysAddr(0x80), true);
        assert!(c.contains(PhysAddr(0x80)), "write-allocate");
        c.flush();
        assert!(!c.contains(PhysAddr(0x80)));
    }

    #[test]
    fn capacity_thrash_produces_misses() {
        let mut c = small(); // 1 KB: 32 blocks
        let mut t = 0;
        for round in 0..3 {
            for b in 0..64u64 {
                c.begin_cycle(Cycle(t));
                t += 10;
                let r = c.access(PhysAddr(b * 32), false);
                if round > 0 {
                    assert!(
                        matches!(r, CacheAccess::Served { was_miss: true, .. }),
                        "64 blocks through a 32-block cache must thrash"
                    );
                }
            }
        }
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn warm_insert_installs_without_stats_or_timing() {
        let mut c = small();
        c.warm_insert(PhysAddr(0x40));
        assert!(c.contains(PhysAddr(0x40)));
        assert_eq!(c.stats(), &CacheStats::default(), "no counters move");
        // The installed line is fill-complete: the first access hits.
        c.begin_cycle(Cycle(0));
        match c.access(PhysAddr(0x44), false) {
            CacheAccess::Served { was_miss, data_at } => {
                assert!(!was_miss, "warm line must hit");
                assert_eq!(data_at, Cycle(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_insert_respects_lru_order() {
        let mut c = small(); // 2-way; same set every 512 bytes
        let s = 512u64;
        // Install three blocks of one set in LRU order: the oldest (0)
        // must be the one evicted.
        c.warm_insert(PhysAddr(0));
        c.warm_insert(PhysAddr(s));
        c.warm_insert(PhysAddr(2 * s));
        assert!(!c.contains(PhysAddr(0)), "oldest warm line evicted");
        assert!(c.contains(PhysAddr(s)));
        assert!(c.contains(PhysAddr(2 * s)));
        // Re-inserting refreshes recency instead of duplicating.
        c.warm_insert(PhysAddr(s));
        c.warm_insert(PhysAddr(3 * s));
        assert!(c.contains(PhysAddr(s)), "refreshed line survives");
        assert!(!c.contains(PhysAddr(2 * s)));
    }

    #[test]
    fn table1_configs() {
        let d = CacheConfig::table1_dcache();
        assert_eq!(d.sets(), 512);
        assert_eq!(d.ports, 4);
        let i = CacheConfig::table1_icache();
        assert_eq!(i.ports, 1);
        // Both build.
        let _ = Cache::new(d);
        let _ = Cache::new(i);
    }
}
