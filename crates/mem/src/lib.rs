//! # hbat-mem — cache memory models
//!
//! Timing models for the paper's memory hierarchy (Table 1): 32 KB 2-way
//! set-associative instruction and data caches with 32-byte blocks, a
//! 6-cycle miss latency, write-back/write-allocate policy, and a
//! four-ported non-blocking data-cache interface.
//!
//! Only tags and timing are modelled; architectural data lives in the
//! functional executor (`hbat-isa`).

pub mod cache;

pub use cache::{Cache, CacheAccess, CacheConfig, CacheStats};
