//! Property-based tests of the cache model against a reference
//! set-associative LRU simulation.

use proptest::prelude::*;

use hbat_core::addr::PhysAddr;
use hbat_core::cycle::Cycle;
use hbat_mem::cache::{Cache, CacheAccess, CacheConfig};

fn small_cfg() -> CacheConfig {
    CacheConfig {
        size_bytes: 512,
        ways: 2,
        block_bytes: 32,
        hit_latency: 2,
        miss_latency: 6,
        ports: 4,
    }
}

/// A reference model: per-set vectors of block tags, most recent last.
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        let sets = (cfg.size_bytes / cfg.block_bytes) as usize / cfg.ways;
        RefCache {
            sets: vec![Vec::new(); sets],
            ways: cfg.ways,
            block: cfg.block_bytes,
        }
    }

    /// Returns true on hit.
    fn access(&mut self, addr: u64) -> bool {
        let blk = addr / self.block;
        let set = (blk as usize) % self.sets.len();
        let tag = blk / self.sets.len() as u64;
        let s = &mut self.sets[set];
        let hit = s.contains(&tag);
        s.retain(|&t| t != tag);
        s.push(tag);
        if s.len() > self.ways {
            s.remove(0);
        }
        hit
    }
}

proptest! {
    /// The cache's hit/miss decisions equal the reference LRU model's, for
    /// arbitrary access sequences (accesses spaced out so fills complete —
    /// in-flight merging is timing, not content).
    #[test]
    fn cache_contents_match_reference_lru(addrs in prop::collection::vec(0u64..4096, 1..300)) {
        let cfg = small_cfg();
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        for (i, &a) in addrs.iter().enumerate() {
            cache.begin_cycle(Cycle(i as u64 * 100));
            let got = match cache.access(PhysAddr(a), false) {
                CacheAccess::Served { was_miss, .. } => !was_miss,
                CacheAccess::NoPort => unreachable!("one access per cycle"),
            };
            let want = reference.access(a);
            prop_assert_eq!(got, want, "access {} to {:#x}", i, a);
        }
        let st = cache.stats();
        prop_assert_eq!(st.accesses, addrs.len() as u64);
        prop_assert_eq!(st.hits + st.misses, st.accesses);
    }

    /// Data-ready times are bounded: hit latency ≤ t ≤ hit+miss latency.
    #[test]
    fn latencies_are_bounded(addrs in prop::collection::vec(0u64..2048, 1..100)) {
        let cfg = small_cfg();
        let mut cache = Cache::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let now = Cycle(i as u64 * 3); // overlapping fills allowed
            cache.begin_cycle(now);
            if let CacheAccess::Served { data_at, .. } = cache.access(PhysAddr(a), i % 3 == 0) {
                prop_assert!(data_at >= now + cfg.hit_latency);
                prop_assert!(data_at <= now + cfg.hit_latency + cfg.miss_latency);
            }
        }
    }

    /// Port rejections happen exactly beyond the per-cycle port count.
    #[test]
    fn port_accounting_is_exact(n in 1usize..12) {
        let cfg = small_cfg();
        let mut cache = Cache::new(cfg);
        cache.begin_cycle(Cycle(0));
        let mut served = 0;
        let mut rejected = 0;
        for i in 0..n {
            match cache.access(PhysAddr(i as u64 * 64), false) {
                CacheAccess::Served { .. } => served += 1,
                CacheAccess::NoPort => rejected += 1,
            }
        }
        prop_assert_eq!(served, n.min(cfg.ports));
        prop_assert_eq!(rejected, n.saturating_sub(cfg.ports));
    }
}
