//! Architected registers.
//!
//! The modelled machine has 32 integer and 32 floating-point registers
//! (Table 1); Figure 9 re-runs everything with 8 + 8. Integer register 0 is
//! hardwired to zero, MIPS-style.

use std::fmt;

/// Number of architected integer registers.
pub const INT_REGS: usize = 32;
/// Number of architected floating-point registers.
pub const FP_REGS: usize = 32;

/// An architected register: integer `r0..r31` or floating-point `f0..f31`.
///
/// Encoded in a single byte: 0–31 are integer, 32–63 floating-point. The
/// encoding is what flows into trace records and the pretranslation cache
/// (which tags entries by register identifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero integer register.
    pub const ZERO: Reg = Reg(0);

    /// Integer register `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!((n as usize) < INT_REGS, "integer register {n} out of range");
        Reg(n)
    }

    /// Floating-point register `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!((n as usize) < FP_REGS, "fp register {n} out of range");
        Reg(32 + n)
    }

    /// Raw encoding (0–63); integer registers first.
    pub fn code(self) -> u8 {
        self.0
    }

    /// Reconstructs a register from its raw encoding.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 64`.
    pub fn from_code(code: u8) -> Reg {
        assert!(code < 64, "register code {code} out of range");
        Reg(code)
    }

    /// True for floating-point registers.
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Index within the integer or FP file.
    pub fn index(self) -> usize {
        (self.0 % 32) as usize
    }

    /// True for the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.index())
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        for n in 0..32 {
            assert_eq!(Reg::from_code(Reg::int(n).code()), Reg::int(n));
            assert_eq!(Reg::from_code(Reg::fp(n).code()), Reg::fp(n));
        }
    }

    #[test]
    fn int_and_fp_spaces_are_disjoint() {
        assert!(!Reg::int(5).is_fp());
        assert!(Reg::fp(5).is_fp());
        assert_ne!(Reg::int(5), Reg::fp(5));
        assert_eq!(Reg::int(5).index(), Reg::fp(5).index());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::int(1).is_zero());
        assert!(!Reg::fp(0).is_zero(), "f0 is a normal register");
    }

    #[test]
    fn display() {
        assert_eq!(Reg::int(7).to_string(), "r7");
        assert_eq!(Reg::fp(7).to_string(), "f7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_register_bounds_checked() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn code_bounds_checked() {
        let _ = Reg::from_code(64);
    }
}
