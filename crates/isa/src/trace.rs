//! Dynamic trace records: what the functional executor hands to the timing
//! simulator.
//!
//! A [`TraceInst`] carries exactly the information the cycle-timing models
//! need — register dependences for scheduling, the effective address and
//! address-generation registers for translation (and pretranslation), and
//! the resolved branch outcome for driving the branch predictor.

use hbat_core::addr::VirtAddr;
use hbat_core::request::{AccessKind, WritebackKind};

use crate::inst::Width;
use crate::reg::Reg;

/// Functional-unit class of a dynamic instruction (Table 1's unit pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (latency 1, pipelined).
    IntAlu,
    /// Integer multiply (latency 3, pipelined).
    IntMul,
    /// Integer divide (latency 12, non-pipelined).
    IntDiv,
    /// FP add/sub (latency 2, pipelined).
    FpAdd,
    /// FP multiply (latency 4, pipelined).
    FpMul,
    /// FP divide (latency 12, non-pipelined).
    FpDiv,
    /// Load (latency 2, pipelined; address translation applies).
    Load,
    /// Store (address translation applies; value written at commit).
    Store,
    /// Conditional branch or unconditional jump (integer ALU timing).
    Branch,
}

impl OpClass {
    /// True for memory operations needing address translation.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// Memory behaviour of a dynamic load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Effective virtual address.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Width of the access in bytes.
    pub width: Width,
    /// Base register used in address generation (pretranslation tag).
    pub base_reg: Reg,
    /// Index register, for register+register addressing.
    pub index_reg: Option<Reg>,
    /// Immediate displacement used in address generation.
    pub offset: i32,
}

/// Resolved control behaviour of a dynamic branch or jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRec {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Instruction index control transfers to if taken.
    pub target: u32,
    /// False for unconditional jumps.
    pub conditional: bool,
}

/// One dynamic (committed-path) instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceInst {
    /// Program-order serial number, from 0.
    pub serial: u64,
    /// Static instruction index (the "PC" in instruction slots).
    pub pc: u32,
    /// Functional-unit class.
    pub class: OpClass,
    /// Source registers read (hardwired zero excluded).
    pub srcs: [Option<Reg>; 3],
    /// Primary destination register, if any.
    pub dest: Option<Reg>,
    /// How `dest`'s value relates to its sources, for pretranslation
    /// propagation.
    pub dest_kind: WritebackKind,
    /// Post-increment base-register writeback, if any (always pointer
    /// arithmetic).
    pub aux_dest: Option<Reg>,
    /// Memory behaviour, for loads and stores.
    pub mem: Option<MemRef>,
    /// Control behaviour, for branches and jumps.
    pub branch: Option<BranchRec>,
}

impl TraceInst {
    /// A blank record for `serial`/`pc` to be filled in by the executor.
    pub fn blank(serial: u64, pc: u32, class: OpClass) -> Self {
        TraceInst {
            serial,
            pc,
            class,
            srcs: [None; 3],
            dest: None,
            dest_kind: WritebackKind::Opaque,
            aux_dest: None,
            mem: None,
            branch: None,
        }
    }

    /// Iterates over the source registers that are present.
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Iterates over all written registers (primary and auxiliary).
    pub fn dest_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.dest.iter().chain(self.aux_dest.iter()).copied()
    }

    /// True if this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        self.mem.is_some()
    }

    /// True if this instruction is a (conditional) branch.
    pub fn is_conditional_branch(&self) -> bool {
        self.branch.map(|b| b.conditional).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_record_is_empty() {
        let t = TraceInst::blank(5, 10, OpClass::IntAlu);
        assert_eq!(t.serial, 5);
        assert_eq!(t.pc, 10);
        assert_eq!(t.src_regs().count(), 0);
        assert_eq!(t.dest_regs().count(), 0);
        assert!(!t.is_mem());
        assert!(!t.is_conditional_branch());
    }

    #[test]
    fn register_iterators() {
        let mut t = TraceInst::blank(0, 0, OpClass::Load);
        t.srcs = [Some(Reg::int(1)), None, Some(Reg::int(2))];
        t.dest = Some(Reg::int(3));
        t.aux_dest = Some(Reg::int(1));
        assert_eq!(
            t.src_regs().collect::<Vec<_>>(),
            vec![Reg::int(1), Reg::int(2)]
        );
        assert_eq!(
            t.dest_regs().collect::<Vec<_>>(),
            vec![Reg::int(3), Reg::int(1)]
        );
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::FpMul.is_mem());
    }
}
