//! A compact binary on-disk format for dynamic traces.
//!
//! Functional execution is cheap but not free; dumping a trace once and
//! replaying it against many designs is how large experiments are run.
//! The format is a little-endian, varint-packed stream:
//!
//! ```text
//! magic "HBATTRC1" | u64 record count | records…
//! record: pc varint | class u8 | flags u8 | srcs | [dest] [aux] [mem] [branch]
//! ```
//!
//! Serial numbers are implicit (records are consecutive from zero).

use std::io::{self, Read, Write};

use hbat_core::addr::VirtAddr;
use hbat_core::request::{AccessKind, WritebackKind};

use crate::inst::Width;
use crate::reg::Reg;
use crate::trace::{BranchRec, MemRef, OpClass, TraceInst};

const MAGIC: &[u8; 8] = b"HBATTRC1";

// Flag bits.
const F_DEST: u8 = 1 << 0;
const F_DEST_PTR: u8 = 1 << 1;
const F_AUX: u8 = 1 << 2;
const F_MEM: u8 = 1 << 3;
const F_BRANCH: u8 = 1 << 4;
const F_TAKEN: u8 = 1 << 5;
const F_COND: u8 = 1 << 6;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::IntDiv => 2,
        OpClass::FpAdd => 3,
        OpClass::FpMul => 4,
        OpClass::FpDiv => 5,
        OpClass::Load => 6,
        OpClass::Store => 7,
        OpClass::Branch => 8,
    }
}

fn class_from(code: u8) -> io::Result<OpClass> {
    Ok(match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::IntDiv,
        3 => OpClass::FpAdd,
        4 => OpClass::FpMul,
        5 => OpClass::FpDiv,
        6 => OpClass::Load,
        7 => OpClass::Store,
        8 => OpClass::Branch,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad opclass code",
            ))
        }
    })
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::B1 => 0,
        Width::B2 => 1,
        Width::B4 => 2,
        Width::B8 => 3,
    }
}

fn width_from(code: u8) -> io::Result<Width> {
    Ok(match code {
        0 => Width::B1,
        1 => Width::B2,
        2 => Width::B4,
        3 => Width::B8,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad width")),
    })
}

/// Writes `trace` to `w` in the HBATTRC1 format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_trace<W: Write>(w: &mut W, trace: &[TraceInst]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for t in trace {
        write_varint(w, t.pc as u64)?;
        let mut flags = 0u8;
        if t.dest.is_some() {
            flags |= F_DEST;
        }
        if t.dest_kind == WritebackKind::PointerArith {
            flags |= F_DEST_PTR;
        }
        if t.aux_dest.is_some() {
            flags |= F_AUX;
        }
        if t.mem.is_some() {
            flags |= F_MEM;
        }
        if let Some(br) = t.branch {
            flags |= F_BRANCH;
            if br.taken {
                flags |= F_TAKEN;
            }
            if br.conditional {
                flags |= F_COND;
            }
        }
        w.write_all(&[class_code(t.class), flags])?;
        let srcs: Vec<u8> = t.src_regs().map(Reg::code).collect();
        w.write_all(&[srcs.len() as u8])?;
        w.write_all(&srcs)?;
        if let Some(d) = t.dest {
            w.write_all(&[d.code()])?;
        }
        if let Some(a) = t.aux_dest {
            w.write_all(&[a.code()])?;
        }
        if let Some(m) = t.mem {
            write_varint(w, m.vaddr.0)?;
            let kw = (width_code(m.width) << 2)
                | (u8::from(m.kind == AccessKind::Store) << 1)
                | u8::from(m.index_reg.is_some());
            w.write_all(&[kw, m.base_reg.code()])?;
            if let Some(ix) = m.index_reg {
                w.write_all(&[ix.code()])?;
            }
            write_varint(w, zigzag(m.offset as i64))?;
        }
        if let Some(br) = t.branch {
            write_varint(w, br.target as u64)?;
        }
    }
    Ok(())
}

/// Pre-allocation cap for the declared record count. The count is
/// attacker-/corruption-controlled (it is read straight from the
/// header), so it must never size an allocation directly: a flipped
/// count byte could otherwise demand gigabytes before the first record
/// fails to parse. Larger traces still load — the vector grows
/// normally past this.
const MAX_PREALLOC_RECORDS: u64 = 1 << 16;

/// Reads a trace written by [`write_trace`].
///
/// Corrupt input is rejected, never trusted: the declared record count
/// only bounds a capped pre-allocation, a stream ending before `count`
/// records is an error, and bytes remaining after `count` records are
/// an error (a flipped count byte can shrink the count as easily as
/// grow it).
///
/// # Errors
///
/// Fails on I/O errors, a bad magic number, malformed records, or a
/// record count that disagrees with the stream length.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Vec<TraceInst>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HBATTRC1 trace",
        ));
    }
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    let mut trace = Vec::with_capacity(count.min(MAX_PREALLOC_RECORDS) as usize);
    for serial in 0..count {
        let pc = read_varint(r)? as u32;
        let mut head = [0u8; 2];
        r.read_exact(&mut head)?;
        let class = class_from(head[0])?;
        let flags = head[1];
        let mut t = TraceInst::blank(serial, pc, class);
        let mut nsrc = [0u8];
        r.read_exact(&mut nsrc)?;
        if nsrc[0] as usize > t.srcs.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many sources",
            ));
        }
        for slot in t.srcs.iter_mut().take(nsrc[0] as usize) {
            let mut b = [0u8];
            r.read_exact(&mut b)?;
            *slot = Some(Reg::from_code(b[0]));
        }
        if flags & F_DEST != 0 {
            let mut b = [0u8];
            r.read_exact(&mut b)?;
            t.dest = Some(Reg::from_code(b[0]));
        }
        t.dest_kind = if flags & F_DEST_PTR != 0 {
            WritebackKind::PointerArith
        } else {
            WritebackKind::Opaque
        };
        if flags & F_AUX != 0 {
            let mut b = [0u8];
            r.read_exact(&mut b)?;
            t.aux_dest = Some(Reg::from_code(b[0]));
        }
        if flags & F_MEM != 0 {
            let vaddr = read_varint(r)?;
            let mut kw = [0u8; 2];
            r.read_exact(&mut kw)?;
            let width = width_from(kw[0] >> 2)?;
            let kind = if kw[0] & 0b10 != 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let index_reg = if kw[0] & 0b01 != 0 {
                let mut b = [0u8];
                r.read_exact(&mut b)?;
                Some(Reg::from_code(b[0]))
            } else {
                None
            };
            let offset = unzigzag(read_varint(r)?) as i32;
            t.mem = Some(MemRef {
                vaddr: VirtAddr(vaddr),
                kind,
                width,
                base_reg: Reg::from_code(kw[1]),
                index_reg,
                offset,
            });
        }
        if flags & F_BRANCH != 0 {
            t.branch = Some(BranchRec {
                taken: flags & F_TAKEN != 0,
                target: read_varint(r)? as u32,
                conditional: flags & F_COND != 0,
            });
        }
        trace.push(t);
    }
    let mut probe = [0u8];
    if r.read(&mut probe)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after the declared record count",
        ));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceInst> {
        let mut a = TraceInst::blank(0, 10, OpClass::Load);
        a.srcs[0] = Some(Reg::int(5));
        a.dest = Some(Reg::int(6));
        a.aux_dest = Some(Reg::int(5));
        a.mem = Some(MemRef {
            vaddr: VirtAddr(0x1234_5678),
            kind: AccessKind::Load,
            width: Width::B8,
            base_reg: Reg::int(5),
            index_reg: None,
            offset: -32,
        });
        let mut b = TraceInst::blank(1, 11, OpClass::IntAlu);
        b.srcs = [Some(Reg::int(6)), Some(Reg::fp(2)), None];
        b.dest = Some(Reg::int(7));
        b.dest_kind = WritebackKind::PointerArith;
        let mut c = TraceInst::blank(2, 12, OpClass::Branch);
        c.srcs[0] = Some(Reg::int(7));
        c.branch = Some(BranchRec {
            taken: true,
            target: 10,
            conditional: true,
        });
        let mut d = TraceInst::blank(3, 13, OpClass::Store);
        d.srcs = [Some(Reg::int(7)), Some(Reg::int(5)), Some(Reg::int(6))];
        d.mem = Some(MemRef {
            vaddr: VirtAddr(u64::from(u32::MAX) + 17),
            kind: AccessKind::Store,
            width: Width::B4,
            base_reg: Reg::int(5),
            index_reg: Some(Reg::int(6)),
            offset: 0,
        });
        vec![a, b, c, d]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTATRCE\0\0\0\0\0\0\0\0".to_vec();
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.push(0);
        let e = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn huge_declared_count_does_not_preallocate() {
        // Header promising u64::MAX records must fail with a clean EOF
        // error, not attempt an OOM-sized allocation first.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let e = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn format_is_compact() {
        // A realistic trace should average well under 10 bytes/record.
        let trace: Vec<TraceInst> = (0..1000u64)
            .map(|i| {
                let mut t = TraceInst::blank(i, (i % 32) as u32, OpClass::IntAlu);
                t.srcs[0] = Some(Reg::int(1));
                t.dest = Some(Reg::int(2));
                t
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert!(
            buf.len() < trace.len() * 8,
            "{} bytes for {} records",
            buf.len(),
            trace.len()
        );
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, 1, -1, i32::MAX as i64, i32::MIN as i64, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
