//! Sparse functional memory.
//!
//! Backs the executor with byte-addressable storage allocated lazily in
//! fixed 4 KiB chunks (a storage granule, independent of the simulated
//! virtual-memory page size). Unwritten memory reads as zero, like
//! demand-zero pages.

use std::collections::HashMap;

use hbat_core::addr::VirtAddr;

const CHUNK_BITS: u32 = 12;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;

/// Sparse, zero-initialised functional memory.
///
/// # Examples
///
/// ```
/// use hbat_core::addr::VirtAddr;
/// use hbat_isa::mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(VirtAddr(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(VirtAddr(0x1000)), 0xdead_beef);
/// assert_eq!(m.read_u64(VirtAddr(0x8000)), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    chunks: HashMap<u64, Box<[u8; CHUNK_SIZE]>>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of 4 KiB storage chunks materialised so far.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    fn chunk_mut(&mut self, addr: u64) -> &mut [u8; CHUNK_SIZE] {
        self.chunks
            .entry(addr >> CHUNK_BITS)
            .or_insert_with(|| Box::new([0; CHUNK_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: VirtAddr) -> u8 {
        let off = (addr.0 & (CHUNK_SIZE as u64 - 1)) as usize;
        self.chunks
            .get(&(addr.0 >> CHUNK_BITS))
            .and_then(|c| c.get(off))
            .copied()
            .unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: VirtAddr, val: u8) {
        let off = (addr.0 & (CHUNK_SIZE as u64 - 1)) as usize;
        if let Some(b) = self.chunk_mut(addr.0).get_mut(off) {
            *b = val;
        }
    }

    /// Reads `n` bytes little-endian into a u64 (`n <= 8`); accesses may
    /// straddle chunk boundaries.
    pub fn read_le(&self, addr: VirtAddr, n: u64) -> u64 {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(VirtAddr(addr.0.wrapping_add(i))) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n` bytes of `val` little-endian (`n <= 8`).
    pub fn write_le(&mut self, addr: VirtAddr, val: u64, n: u64) {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_u8(VirtAddr(addr.0.wrapping_add(i)), (val >> (8 * i)) as u8);
        }
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: VirtAddr) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: VirtAddr, val: u64) {
        self.write_le(addr, val, 8)
    }

    /// Reads an f64 (bit pattern stored little-endian).
    pub fn read_f64(&self, addr: VirtAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an f64.
    pub fn write_f64(&mut self, addr: VirtAddr, val: f64) {
        self.write_u64(addr, val.to_bits())
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(VirtAddr(addr.0.wrapping_add(i as u64)), b);
        }
    }

    /// The storage-chunk granule in bytes (checkpoint snapshots
    /// serialise memory as whole chunks of this size).
    pub const fn chunk_bytes() -> usize {
        CHUNK_SIZE
    }

    /// Every materialised chunk as `(base virtual address, bytes)`,
    /// sorted by base address — a deterministic export for snapshots
    /// regardless of hash-map iteration order.
    pub fn export_chunks(&self) -> Vec<(u64, &[u8])> {
        let mut out: Vec<(u64, &[u8])> = self
            .chunks // hbat-lint: allow(determinism) sorted by base address below
            .iter()
            .map(|(&key, data)| (key << CHUNK_BITS, data.as_slice()))
            .collect();
        out.sort_unstable_by_key(|&(base, _)| base);
        out
    }

    /// Installs one exported chunk at `base` (a chunk-aligned virtual
    /// address). Restoring writes whole chunks, so the materialised
    /// chunk set after a restore matches the exporting machine's
    /// exactly.
    ///
    /// Returns `Err` when `base` is not chunk-aligned or `bytes` is not
    /// exactly one chunk — a malformed snapshot, not a caller bug.
    pub fn import_chunk(&mut self, base: u64, bytes: &[u8]) -> Result<(), String> {
        if base & (CHUNK_SIZE as u64 - 1) != 0 {
            return Err(format!(
                "chunk base {base:#x} is not {CHUNK_SIZE}-byte aligned"
            ));
        }
        if bytes.len() != CHUNK_SIZE {
            return Err(format!(
                "chunk at {base:#x} has {} bytes (expected {CHUNK_SIZE})",
                bytes.len()
            ));
        }
        let chunk = self.chunk_mut(base);
        chunk.copy_from_slice(bytes);
        Ok(())
    }

    /// Drops every materialised chunk (restore replaces memory
    /// wholesale; the snapshot's chunk set is authoritative).
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(VirtAddr(12345)), 0);
        assert_eq!(m.read_u64(VirtAddr(1 << 40)), 0);
        assert_eq!(m.chunk_count(), 0, "reads must not materialise chunks");
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = Memory::new();
        m.write_u64(VirtAddr(0x100), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(VirtAddr(0x100)), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(VirtAddr(0x100)), 0xef, "little endian");
        assert_eq!(m.read_u8(VirtAddr(0x107)), 0x01);
    }

    #[test]
    fn straddling_chunk_boundary() {
        let mut m = Memory::new();
        let addr = VirtAddr(0xffc); // last 4 bytes of chunk 0
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.chunk_count(), 2);
    }

    #[test]
    fn partial_widths() {
        let mut m = Memory::new();
        m.write_le(VirtAddr(0), 0xAABBCCDD, 4);
        assert_eq!(m.read_le(VirtAddr(0), 4), 0xAABBCCDD);
        assert_eq!(m.read_le(VirtAddr(0), 2), 0xCCDD);
        m.write_le(VirtAddr(0), 0x11, 1);
        assert_eq!(m.read_le(VirtAddr(0), 4), 0xAABBCC11);
    }

    #[test]
    fn floats_round_trip() {
        let mut m = Memory::new();
        m.write_f64(VirtAddr(8), -1234.5678);
        assert_eq!(m.read_f64(VirtAddr(8)), -1234.5678);
    }

    #[test]
    fn chunk_export_import_round_trips() {
        let mut m = Memory::new();
        m.write_u64(VirtAddr(0x100), 0x1111);
        m.write_u64(VirtAddr(0x5000), 0x2222);
        m.write_u8(VirtAddr(0xffc), 7); // straddles nothing, chunk 0
        let exported: Vec<(u64, Vec<u8>)> = m
            .export_chunks()
            .into_iter()
            .map(|(b, s)| (b, s.to_vec()))
            .collect();
        assert_eq!(exported.len(), 2);
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        let mut r = Memory::new();
        for (base, bytes) in &exported {
            r.import_chunk(*base, bytes).unwrap();
        }
        assert_eq!(r.read_u64(VirtAddr(0x100)), 0x1111);
        assert_eq!(r.read_u64(VirtAddr(0x5000)), 0x2222);
        assert_eq!(r.read_u8(VirtAddr(0xffc)), 7);
        assert_eq!(r.chunk_count(), m.chunk_count());
        // Malformed imports are typed errors, not panics.
        assert!(r.import_chunk(0x10, &[0; 4096]).is_err(), "misaligned");
        assert!(r.import_chunk(0x1000, &[0; 64]).is_err(), "short chunk");
        r.clear();
        assert_eq!(r.chunk_count(), 0);
    }

    #[test]
    fn byte_slices() {
        let mut m = Memory::new();
        m.write_bytes(VirtAddr(0x10), b"hello");
        assert_eq!(m.read_u8(VirtAddr(0x10)), b'h');
        assert_eq!(m.read_u8(VirtAddr(0x14)), b'o');
    }
}
