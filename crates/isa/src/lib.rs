//! # hbat-isa — the simulated instruction set and functional executor
//!
//! The paper evaluates its TLB designs on an extended (virtual) MIPS-like
//! architecture: a MIPS-I superset with register+register and
//! post-increment/decrement addressing modes and no architected delay
//! slots (Section 4.1). This crate provides:
//!
//! * [`inst`] / [`reg`] / [`program`] — the static instruction set;
//! * [`mem`] — sparse, zero-filled functional memory;
//! * [`executor`] — an architecturally exact interpreter;
//! * [`trace`] — the dynamic instruction records consumed by the
//!   cycle-timing models in `hbat-cpu`;
//! * [`tracefile`] — a compact binary on-disk trace format (dump once,
//!   replay against many designs).
//!
//! ## Example: trace a tiny loop
//!
//! ```
//! use hbat_isa::executor::Machine;
//! use hbat_isa::inst::{AluOp, Cond, Inst, Operand};
//! use hbat_isa::program::Program;
//! use hbat_isa::reg::Reg;
//!
//! let program = Program::new(vec![
//!     Inst::Li { d: Reg::int(1), imm: 3 },
//!     Inst::Alu { op: AluOp::Sub, d: Reg::int(1), a: Reg::int(1), b: Operand::Imm(1) },
//!     Inst::Branch { cond: Cond::Gt, a: Reg::int(1), b: Reg::ZERO, target: 1 },
//!     Inst::Halt,
//! ])?;
//! let trace = Machine::new(program).run_to_vec(1_000);
//! assert_eq!(trace.len(), 1 + 3 * 2); // li + three (sub, branch) pairs
//! # Ok::<(), hbat_isa::program::ProgramError>(())
//! ```

pub mod executor;
pub mod inst;
pub mod mem;
pub mod program;
pub mod reg;
pub mod trace;
pub mod tracefile;
pub mod uop;

pub use executor::Machine;
pub use inst::{AddrMode, AluOp, Cond, FpuOp, Inst, Operand, Width};
pub use program::{Program, ProgramError};
pub use reg::Reg;
pub use trace::{BranchRec, MemRef, OpClass, TraceInst};
pub use uop::{DecodedInst, MicroOp, PredecodedProgram, PredecodedTrace, NO_REG};
