//! Predecoded micro-ops: decode-once representations for both execution
//! paths, following the decode-once-into-struct + table-dispatch idiom
//! of interpreter-class emulators.
//!
//! Two hot loops used to re-parse their inputs on every visit:
//!
//! * the functional executor matched the nested [`Inst`] enum (operand
//!   enums, addressing-mode enums) once per dynamic instruction, and
//! * the timing engine chased `Option<Reg>` / `Option<MemRef>` /
//!   `Option<BranchRec>` structure inside [`TraceInst`] once per cycle
//!   per ROB slot.
//!
//! This module predecodes each side exactly once:
//!
//! * [`PredecodedProgram`] flattens the *static* program into
//!   [`DecodedInst`] records — a [`Handler`] index plus pre-extracted
//!   operands and a prebuilt [`TraceInst`] template — so
//!   `Machine::step` becomes an indexed table dispatch;
//! * [`PredecodedTrace`] flattens the *dynamic* trace into fixed-size
//!   [`MicroOp`] records — register codes as sentinel-coded bytes, the
//!   memory/branch records as plain fields behind a flags byte, and the
//!   address-generation source mask precomputed — so the engine's
//!   scheduling scans read flat words with zero `Option` chasing.
//!
//! Both forms are lossless: [`MicroOp::decode`] reproduces the original
//! [`TraceInst`] byte-for-byte and [`DecodedInst::reencode`] reproduces
//! the original [`Inst`], which is what the round-trip regression tests
//! pin (a newly added instruction form that predecodes lossily fails at
//! test time, not mid-simulation).

use hbat_core::addr::VirtAddr;
use hbat_core::request::{AccessKind, WritebackKind};

use crate::inst::{AddrMode, AluOp, Cond, FpuOp, Inst, Operand, Width};
use crate::program::Program;
use crate::reg::Reg;
use crate::trace::{BranchRec, MemRef, OpClass, TraceInst};

/// Sentinel register code meaning "no register" in [`MicroOp`] fields
/// (real codes are 0–63; 0 is the hardwired zero register, which *is* a
/// valid base register).
pub const NO_REG: u8 = u8::MAX;

// ---- dynamic-trace micro-ops ---------------------------------------------

/// One predecoded dynamic instruction: a fixed-size, `Option`-free
/// mirror of [`TraceInst`] sized for the timing engine's per-cycle
/// scans. Absent registers are [`NO_REG`]; the memory and branch
/// records live behind [`MicroOp::flags`] bits instead of `Option`
/// discriminants; and `addr_src_mask` precomputes which source slots
/// feed address generation (the engine used to re-derive that from the
/// memory record on every wakeup check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Program-order serial number.
    pub serial: u64,
    /// Effective virtual address (memory ops; 0 otherwise).
    pub vaddr: u64,
    /// Static instruction index.
    pub pc: u32,
    /// Branch target (branches; 0 otherwise).
    pub target: u32,
    /// Address-generation displacement (memory ops; 0 otherwise).
    pub offset: i32,
    /// Functional-unit class.
    pub class: OpClass,
    /// Presence/shape bits, see the `F_*` constants.
    pub flags: u8,
    /// Source register codes ([`NO_REG`] for empty slots).
    pub srcs: [u8; 3],
    /// Primary destination register code ([`NO_REG`] if none).
    pub dest: u8,
    /// Post-increment writeback register code ([`NO_REG`] if none).
    pub aux_dest: u8,
    /// Address-generation base register code (memory ops; [`NO_REG`]
    /// otherwise; 0 is the valid hardwired-zero base).
    pub base_reg: u8,
    /// Index register code (register+register mode; [`NO_REG`] otherwise).
    pub index_reg: u8,
    /// Access width (memory ops; arbitrary otherwise).
    pub width: Width,
    /// Bit `i` set ⇔ `srcs[i]` participates in address generation.
    pub addr_src_mask: u8,
}

// The whole point is a compact fixed-size record the scheduling scans
// stream through; fail loudly if a new field bloats it past one half of
// a cache line.
const _: () = assert!(std::mem::size_of::<MicroOp>() <= 40);

impl MicroOp {
    /// `flags`: the instruction accesses data memory.
    pub const F_MEM: u8 = 1 << 0;
    /// `flags`: the memory access is a store (`F_MEM` set).
    pub const F_STORE: u8 = 1 << 1;
    /// `flags`: the instruction has a branch record.
    pub const F_BRANCH: u8 = 1 << 2;
    /// `flags`: the branch was taken (`F_BRANCH` set).
    pub const F_BR_TAKEN: u8 = 1 << 3;
    /// `flags`: the branch is conditional (`F_BRANCH` set).
    pub const F_BR_COND: u8 = 1 << 4;
    /// `flags`: the destination writeback is pointer arithmetic.
    pub const F_DEST_PTR: u8 = 1 << 5;

    /// Predecodes one dynamic trace record. Lossless: see
    /// [`MicroOp::decode`].
    pub fn encode(t: &TraceInst) -> MicroOp {
        let mut flags = 0u8;
        if t.dest_kind == WritebackKind::PointerArith {
            flags |= Self::F_DEST_PTR;
        }
        let (vaddr, offset, base_reg, index_reg, width) = match t.mem {
            Some(m) => {
                flags |= Self::F_MEM;
                if m.kind == AccessKind::Store {
                    flags |= Self::F_STORE;
                }
                (
                    m.vaddr.0,
                    m.offset,
                    m.base_reg.code(),
                    m.index_reg.map_or(NO_REG, Reg::code),
                    m.width,
                )
            }
            None => (0, 0, NO_REG, NO_REG, Width::B1),
        };
        let target = match t.branch {
            Some(b) => {
                flags |= Self::F_BRANCH;
                if b.taken {
                    flags |= Self::F_BR_TAKEN;
                }
                if b.conditional {
                    flags |= Self::F_BR_COND;
                }
                b.target
            }
            None => 0,
        };
        let code_of = |r: Option<Reg>| r.map_or(NO_REG, Reg::code);
        let srcs = [code_of(t.srcs[0]), code_of(t.srcs[1]), code_of(t.srcs[2])];
        let mut addr_src_mask = 0u8;
        if let Some(m) = t.mem {
            for (i, src) in t.srcs.iter().enumerate() {
                if let Some(r) = src {
                    if *r == m.base_reg || m.index_reg == Some(*r) {
                        addr_src_mask |= 1 << i;
                    }
                }
            }
        }
        MicroOp {
            serial: t.serial,
            vaddr,
            pc: t.pc,
            target,
            offset,
            class: t.class,
            flags,
            srcs,
            dest: code_of(t.dest),
            aux_dest: code_of(t.aux_dest),
            base_reg,
            index_reg,
            width,
            addr_src_mask,
        }
    }

    /// Reconstructs the original [`TraceInst`] byte-for-byte.
    pub fn decode(&self) -> TraceInst {
        let reg_of = |code: u8| (code != NO_REG).then(|| Reg::from_code(code));
        TraceInst {
            serial: self.serial,
            pc: self.pc,
            class: self.class,
            srcs: [
                reg_of(self.srcs[0]),
                reg_of(self.srcs[1]),
                reg_of(self.srcs[2]),
            ],
            dest: reg_of(self.dest),
            dest_kind: if self.flags & Self::F_DEST_PTR != 0 {
                WritebackKind::PointerArith
            } else {
                WritebackKind::Opaque
            },
            aux_dest: reg_of(self.aux_dest),
            mem: (self.flags & Self::F_MEM != 0).then(|| MemRef {
                vaddr: VirtAddr(self.vaddr),
                kind: if self.flags & Self::F_STORE != 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                width: self.width,
                base_reg: Reg::from_code(self.base_reg),
                index_reg: reg_of(self.index_reg),
                offset: self.offset,
            }),
            branch: (self.flags & Self::F_BRANCH != 0).then_some(BranchRec {
                taken: self.flags & Self::F_BR_TAKEN != 0,
                target: self.target,
                conditional: self.flags & Self::F_BR_COND != 0,
            }),
        }
    }

    // hbat-lint: hot — MicroOp accessors run inside the engine's per-cycle scans
    /// True if this instruction accesses data memory.
    #[inline(always)]
    pub fn is_mem(&self) -> bool {
        self.flags & Self::F_MEM != 0
    }

    /// Load or store (memory ops only; `Load` otherwise).
    #[inline(always)]
    pub fn mem_kind(&self) -> AccessKind {
        if self.flags & Self::F_STORE != 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        }
    }

    /// Destination writeback kind.
    #[inline(always)]
    pub fn dest_kind(&self) -> WritebackKind {
        if self.flags & Self::F_DEST_PTR != 0 {
            WritebackKind::PointerArith
        } else {
            WritebackKind::Opaque
        }
    }

    /// The branch record, if this instruction is a branch or jump.
    #[inline(always)]
    pub fn branch(&self) -> Option<BranchRec> {
        (self.flags & Self::F_BRANCH != 0).then_some(BranchRec {
            taken: self.flags & Self::F_BR_TAKEN != 0,
            target: self.target,
            conditional: self.flags & Self::F_BR_COND != 0,
        })
    }
    // hbat-lint: cold
}

/// A dynamic trace predecoded into a flat [`MicroOp`] array, built once
/// per workload and shared (`Arc<PredecodedTrace>`) across every design
/// cell that replays it.
#[derive(Debug, Clone, PartialEq)]
pub struct PredecodedTrace {
    ops: Box<[MicroOp]>,
}

impl PredecodedTrace {
    /// Predecodes a dynamic trace (one pass; the only allocation on the
    /// fast path, amortised across every replay of the workload).
    pub fn predecode(trace: &[TraceInst]) -> PredecodedTrace {
        PredecodedTrace {
            ops: trace.iter().map(MicroOp::encode).collect(),
        }
    }

    /// The micro-ops, in program order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Decodes back to the original trace (round-trip tests).
    pub fn decode(&self) -> Vec<TraceInst> {
        self.ops.iter().map(MicroOp::decode).collect()
    }
}

impl std::ops::Deref for PredecodedTrace {
    type Target = [MicroOp];
    fn deref(&self) -> &[MicroOp] {
        &self.ops
    }
}

// ---- static-program predecode --------------------------------------------

/// Semantic handler index of a predecoded static instruction: the
/// executor's dispatch table. One entry per distinct runtime behaviour
/// (register-register and register-immediate ALU forms dispatch
/// separately so the operand fetch is branch-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handler {
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
    /// `d = imm`.
    Li,
    /// `d = a <op> b` (register second operand).
    AluRR,
    /// `d = a <op> imm` (immediate second operand).
    AluRI,
    /// `d = a * b`.
    Mul,
    /// `d = a / b` (divide-by-zero yields 0).
    Div,
    /// Floating-point `d = a <op> b`.
    Fpu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
}

/// Flattened addressing-mode discriminant (the registers and the
/// displacement/step live in the [`DecodedInst`] operand fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrKind {
    /// `base + offset` (`imm` holds the displacement).
    BaseOffset,
    /// `base + index` (`b` holds the index register).
    BaseIndex,
    /// Effective address `base`; `base += imm` after the access.
    PostInc,
}

/// One predecoded static instruction: handler index, pre-extracted
/// operands, and a prebuilt [`TraceInst`] template whose static fields
/// (class, dependence lists, displacement, branch target) were computed
/// once at predecode time. Per dynamic instance the executor patches
/// only the serial number, the effective address, and the branch
/// direction.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// Prebuilt trace record (`serial`, memory `vaddr`, and branch
    /// `taken` patched at run time).
    pub template: TraceInst,
    /// Semantic dispatch index.
    pub handler: Handler,
    /// ALU operation (`AluRR`/`AluRI`).
    pub alu: AluOp,
    /// FP operation (`Fpu`).
    pub fpu: FpuOp,
    /// Branch condition (`Branch`).
    pub cond: Cond,
    /// Addressing mode shape (`Load`/`Store`).
    pub mode: AddrKind,
    /// Destination register — or the store's source register.
    pub d: Reg,
    /// First source register — the base register for memory ops.
    pub a: Reg,
    /// Second source register — the index register for `BaseIndex`.
    pub b: Reg,
    /// Immediate: `Li` constant, `AluRI` operand, `BaseOffset`
    /// displacement, or `PostInc` step.
    pub imm: i64,
    /// Access width (`Load`/`Store`).
    pub width: Width,
    /// Control-transfer target (`Branch`/`Jump`).
    pub target: u32,
}

/// Mirrors the executor's source-dependence recording: registers
/// deduplicate, the hardwired zero register never appears.
fn push_src(t: &mut TraceInst, r: Reg) {
    if r.is_zero() {
        return;
    }
    for slot in &mut t.srcs {
        if slot.is_none() {
            *slot = Some(r);
            return;
        }
        if *slot == Some(r) {
            return;
        }
    }
}

/// Mirrors the executor's destination recording: writes to the zero
/// register produce no architectural destination.
fn set_dest(t: &mut TraceInst, r: Reg, kind: WritebackKind) {
    if !r.is_zero() {
        t.dest = Some(r);
        t.dest_kind = kind;
    }
}

impl DecodedInst {
    /// Predecodes one static instruction at index `pc`.
    pub fn from_inst(pc: u32, inst: Inst) -> DecodedInst {
        let mut di = DecodedInst {
            template: TraceInst::blank(0, pc, OpClass::IntAlu),
            handler: Handler::Nop,
            alu: AluOp::Add,
            fpu: FpuOp::Add,
            cond: Cond::Eq,
            mode: AddrKind::BaseOffset,
            d: Reg::ZERO,
            a: Reg::ZERO,
            b: Reg::ZERO,
            imm: 0,
            width: Width::B8,
            target: 0,
        };
        let t = &mut di.template;
        match inst {
            Inst::Halt => di.handler = Handler::Halt,
            Inst::Nop => di.handler = Handler::Nop,
            Inst::Li { d, imm } => {
                di.handler = Handler::Li;
                di.d = d;
                di.imm = imm;
                set_dest(t, d, WritebackKind::Opaque);
            }
            Inst::Alu { op, d, a, b } => {
                di.alu = op;
                di.d = d;
                di.a = a;
                push_src(t, a);
                match b {
                    Operand::Reg(r) => {
                        di.handler = Handler::AluRR;
                        di.b = r;
                        push_src(t, r);
                    }
                    Operand::Imm(i) => {
                        di.handler = Handler::AluRI;
                        di.imm = i as i64;
                    }
                }
                let kind = if op.is_pointer_arith() {
                    WritebackKind::PointerArith
                } else {
                    WritebackKind::Opaque
                };
                set_dest(t, d, kind);
            }
            Inst::Mul { d, a, b } => {
                di.handler = Handler::Mul;
                di.d = d;
                di.a = a;
                di.b = b;
                t.class = OpClass::IntMul;
                push_src(t, a);
                push_src(t, b);
                set_dest(t, d, WritebackKind::Opaque);
            }
            Inst::Div { d, a, b } => {
                di.handler = Handler::Div;
                di.d = d;
                di.a = a;
                di.b = b;
                t.class = OpClass::IntDiv;
                push_src(t, a);
                push_src(t, b);
                set_dest(t, d, WritebackKind::Opaque);
            }
            Inst::Fpu { op, d, a, b } => {
                di.handler = Handler::Fpu;
                di.fpu = op;
                di.d = d;
                di.a = a;
                di.b = b;
                t.class = match op {
                    FpuOp::Add | FpuOp::Sub => OpClass::FpAdd,
                    FpuOp::Mul => OpClass::FpMul,
                    FpuOp::Div => OpClass::FpDiv,
                };
                debug_assert!(d.is_fp() && a.is_fp() && b.is_fp());
                push_src(t, a);
                push_src(t, b);
                set_dest(t, d, WritebackKind::Opaque);
            }
            Inst::Load { d, addr, width } => {
                di.handler = Handler::Load;
                di.d = d;
                di.width = width;
                Self::decode_addr(&mut di, addr);
                let t = &mut di.template;
                t.class = OpClass::Load;
                set_dest(t, d, WritebackKind::Opaque);
            }
            Inst::Store { s, addr, width } => {
                di.handler = Handler::Store;
                di.d = s;
                di.width = width;
                push_src(t, s);
                Self::decode_addr(&mut di, addr);
                di.template.class = OpClass::Store;
            }
            Inst::Branch { cond, a, b, target } => {
                di.handler = Handler::Branch;
                di.cond = cond;
                di.a = a;
                di.b = b;
                di.target = target;
                t.class = OpClass::Branch;
                push_src(t, a);
                push_src(t, b);
                t.branch = Some(BranchRec {
                    taken: false, // patched per dynamic instance
                    target,
                    conditional: true,
                });
            }
            Inst::Jump { target } => {
                di.handler = Handler::Jump;
                di.target = target;
                t.class = OpClass::Branch;
                t.branch = Some(BranchRec {
                    taken: true,
                    target,
                    conditional: false,
                });
            }
        }
        di
    }

    /// Flattens the addressing mode and builds the static part of the
    /// memory record (source-dependence order matches the executor:
    /// base before index, after any store data register).
    fn decode_addr(di: &mut DecodedInst, addr: AddrMode) {
        let base = addr.base();
        di.a = base;
        push_src(&mut di.template, base);
        let mut index_reg = None;
        match addr {
            AddrMode::BaseOffset { offset, .. } => {
                di.mode = AddrKind::BaseOffset;
                di.imm = offset as i64;
            }
            AddrMode::BaseIndex { index, .. } => {
                di.mode = AddrKind::BaseIndex;
                di.b = index;
                index_reg = Some(index);
                push_src(&mut di.template, index);
            }
            AddrMode::PostInc { step, .. } => {
                di.mode = AddrKind::PostInc;
                di.imm = step as i64;
                if !base.is_zero() {
                    di.template.aux_dest = Some(base);
                }
            }
        }
        di.template.mem = Some(MemRef {
            vaddr: VirtAddr(0),     // patched per dynamic instance
            kind: AccessKind::Load, // Store overwrites below
            width: di.width,
            base_reg: base,
            index_reg,
            offset: addr.displacement(),
        });
        if di.handler == Handler::Store {
            if let Some(m) = di.template.mem.as_mut() {
                m.kind = AccessKind::Store;
            }
        }
    }

    /// Reconstructs the addressing mode from the flattened operands.
    fn addr_mode(&self) -> AddrMode {
        match self.mode {
            AddrKind::BaseOffset => AddrMode::BaseOffset {
                base: self.a,
                offset: self.imm as i32,
            },
            AddrKind::BaseIndex => AddrMode::BaseIndex {
                base: self.a,
                index: self.b,
            },
            AddrKind::PostInc => AddrMode::PostInc {
                base: self.a,
                step: self.imm as i32,
            },
        }
    }

    /// Reconstructs the original [`Inst`] byte-for-byte (the round-trip
    /// regression gate: predecode must be lossless for every form).
    pub fn reencode(&self) -> Inst {
        match self.handler {
            Handler::Nop => Inst::Nop,
            Handler::Halt => Inst::Halt,
            Handler::Li => Inst::Li {
                d: self.d,
                imm: self.imm,
            },
            Handler::AluRR => Inst::Alu {
                op: self.alu,
                d: self.d,
                a: self.a,
                b: Operand::Reg(self.b),
            },
            Handler::AluRI => Inst::Alu {
                op: self.alu,
                d: self.d,
                a: self.a,
                b: Operand::Imm(self.imm as i32),
            },
            Handler::Mul => Inst::Mul {
                d: self.d,
                a: self.a,
                b: self.b,
            },
            Handler::Div => Inst::Div {
                d: self.d,
                a: self.a,
                b: self.b,
            },
            Handler::Fpu => Inst::Fpu {
                op: self.fpu,
                d: self.d,
                a: self.a,
                b: self.b,
            },
            Handler::Load => Inst::Load {
                d: self.d,
                addr: self.addr_mode(),
                width: self.width,
            },
            Handler::Store => Inst::Store {
                s: self.d,
                addr: self.addr_mode(),
                width: self.width,
            },
            Handler::Branch => Inst::Branch {
                cond: self.cond,
                a: self.a,
                b: self.b,
                target: self.target,
            },
            Handler::Jump => Inst::Jump {
                target: self.target,
            },
        }
    }
}

/// A static program predecoded into a flat [`DecodedInst`] table,
/// indexed by pc. Built once in `Machine::new`.
#[derive(Debug, Clone)]
pub struct PredecodedProgram {
    code: Box<[DecodedInst]>,
}

impl PredecodedProgram {
    /// Predecodes every instruction of `program`.
    pub fn from_program(program: &Program) -> PredecodedProgram {
        PredecodedProgram {
            code: program
                .instructions()
                .iter()
                .enumerate()
                .map(|(pc, &inst)| DecodedInst::from_inst(pc as u32, inst))
                .collect(),
        }
    }

    /// The decoded instructions, by pc.
    pub fn code(&self) -> &[DecodedInst] {
        &self.code
    }

    /// Re-encodes the whole program (round-trip tests).
    pub fn reencode(&self) -> Vec<Inst> {
        self.code.iter().map(DecodedInst::reencode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_trace_inst() -> TraceInst {
        TraceInst {
            serial: 41,
            pc: 7,
            class: OpClass::Store,
            srcs: [Some(Reg::int(2)), Some(Reg::int(5)), Some(Reg::int(9))],
            dest: None,
            dest_kind: WritebackKind::Opaque,
            aux_dest: Some(Reg::int(5)),
            mem: Some(MemRef {
                vaddr: VirtAddr(0xdead_beef_0040),
                kind: AccessKind::Store,
                width: Width::B4,
                base_reg: Reg::int(5),
                index_reg: Some(Reg::int(9)),
                offset: -16,
            }),
            branch: None,
        }
    }

    #[test]
    fn micro_op_round_trips_a_memory_record() {
        let t = mem_trace_inst();
        let u = MicroOp::encode(&t);
        assert_eq!(u.decode(), t);
        assert!(u.is_mem());
        assert_eq!(u.mem_kind(), AccessKind::Store);
        // srcs[1] is the base, srcs[2] the index; srcs[0] is store data.
        assert_eq!(u.addr_src_mask, 0b110);
    }

    #[test]
    fn micro_op_round_trips_a_branch_record() {
        let mut t = TraceInst::blank(3, 12, OpClass::Branch);
        t.srcs = [Some(Reg::int(1)), None, None];
        t.branch = Some(BranchRec {
            taken: true,
            target: 4,
            conditional: true,
        });
        let u = MicroOp::encode(&t);
        assert_eq!(u.decode(), t);
        assert_eq!(u.branch(), t.branch);
        assert_eq!(u.addr_src_mask, 0, "non-memory ops have no address deps");
    }

    #[test]
    fn micro_op_keeps_zero_base_register_distinct_from_absent() {
        // Absolute addressing uses the hardwired zero base: code 0 must
        // survive, distinct from the NO_REG sentinel.
        let mut t = TraceInst::blank(0, 0, OpClass::Load);
        t.dest = Some(Reg::int(1));
        t.mem = Some(MemRef {
            vaddr: VirtAddr(0x80),
            kind: AccessKind::Load,
            width: Width::B8,
            base_reg: Reg::ZERO,
            index_reg: None,
            offset: 0x80,
        });
        let u = MicroOp::encode(&t);
        assert_eq!(u.base_reg, 0);
        assert_eq!(u.index_reg, NO_REG);
        assert_eq!(u.decode(), t);
    }

    #[test]
    fn micro_op_preserves_dest_kind_and_fp_codes() {
        let mut t = TraceInst::blank(9, 1, OpClass::IntAlu);
        t.srcs = [Some(Reg::fp(3)), None, None];
        t.dest = Some(Reg::fp(31));
        t.dest_kind = WritebackKind::PointerArith;
        let u = MicroOp::encode(&t);
        assert_eq!(u.dest, 63);
        assert_eq!(u.dest_kind(), WritebackKind::PointerArith);
        assert_eq!(u.decode(), t);
    }

    #[test]
    fn predecoded_trace_round_trips() {
        let mut b = TraceInst::blank(1, 2, OpClass::Branch);
        b.branch = Some(BranchRec {
            taken: false,
            target: 9,
            conditional: true,
        });
        let trace = vec![mem_trace_inst(), b, TraceInst::blank(2, 3, OpClass::FpMul)];
        let p = PredecodedTrace::predecode(&trace);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.decode(), trace);
        assert_eq!(p.ops()[0].serial, 41);
    }

    #[test]
    fn decoded_inst_reencodes_representative_forms() {
        let forms = [
            Inst::Nop,
            Inst::Halt,
            Inst::Li {
                d: Reg::int(1),
                imm: -7,
            },
            Inst::Alu {
                op: AluOp::Xor,
                d: Reg::int(2),
                a: Reg::int(3),
                b: Operand::Reg(Reg::int(4)),
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(2),
                a: Reg::int(3),
                b: Operand::Imm(-12),
            },
            Inst::Load {
                d: Reg::fp(1),
                addr: AddrMode::PostInc {
                    base: Reg::int(6),
                    step: -8,
                },
                width: Width::B8,
            },
            Inst::Store {
                s: Reg::int(7),
                addr: AddrMode::BaseIndex {
                    base: Reg::int(8),
                    index: Reg::int(9),
                },
                width: Width::B2,
            },
            Inst::Branch {
                cond: Cond::Le,
                a: Reg::int(1),
                b: Reg::int(2),
                target: 0,
            },
            Inst::Jump { target: 1 },
        ];
        for inst in forms {
            let di = DecodedInst::from_inst(0, inst);
            assert_eq!(di.reencode(), inst, "lossy predecode of {inst:?}");
        }
    }

    #[test]
    fn predecoded_program_matches_source_order() {
        let prog = Program::new(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 5,
            },
            Inst::Jump { target: 2 },
            Inst::Halt,
        ])
        .unwrap();
        let p = PredecodedProgram::from_program(&prog);
        assert_eq!(p.code().len(), 3);
        assert_eq!(p.reencode(), prog.instructions());
        assert_eq!(p.code()[1].template.pc, 1);
    }
}
