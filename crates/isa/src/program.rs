//! Static programs: validated instruction sequences.

use std::fmt;

use crate::inst::Inst;

/// Error produced when validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A control-transfer target is out of range.
    BadTarget {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// The program cannot terminate: no `Halt` instruction anywhere.
    NoHalt,
    /// A control transfer references a label that was never bound.
    UnboundLabel {
        /// The label id that has no bound position.
        label: u32,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BadTarget { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ProgramError::UnboundLabel { label } => {
                write!(f, "branch references label {label}, which was never bound")
            }
            ProgramError::NoHalt => write!(f, "program has no halt instruction"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated instruction sequence, executed from index 0.
///
/// # Examples
///
/// ```
/// use hbat_isa::inst::Inst;
/// use hbat_isa::program::Program;
///
/// let p = Program::new(vec![Inst::Nop, Inst::Halt])?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), hbat_isa::program::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the sequence is empty, has no `Halt`, or
    /// any branch/jump target is out of range.
    pub fn new(insts: Vec<Inst>) -> Result<Program, ProgramError> {
        if insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        if !insts.iter().any(|i| matches!(i, Inst::Halt)) {
            return Err(ProgramError::NoHalt);
        }
        for (at, inst) in insts.iter().enumerate() {
            let target = match *inst {
                Inst::Branch { target, .. } | Inst::Jump { target } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if target as usize >= insts.len() {
                    return Err(ProgramError::BadTarget { at, target });
                }
            }
        }
        Ok(Program { insts })
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at index `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn fetch(&self, pc: u32) -> Inst {
        self.insts[pc as usize]
    }

    /// All instructions, in order.
    pub fn instructions(&self) -> &[Inst] {
        &self.insts
    }

    /// Renders a human-readable listing with branch-target labels, for
    /// debugging generated programs.
    pub fn disassemble(&self) -> String {
        use std::collections::BTreeSet;
        use std::fmt::Write as _;
        let targets: BTreeSet<u32> = self
            .insts
            .iter()
            .filter_map(|i| match *i {
                Inst::Branch { target, .. } | Inst::Jump { target } => Some(target),
                _ => None,
            })
            .collect();
        let mut out = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            let marker = if targets.contains(&(pc as u32)) {
                "L"
            } else {
                " "
            };
            let _ = writeln!(out, "{marker}{pc:>6}:  {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;
    use crate::reg::Reg;

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new(vec![]).unwrap_err(), ProgramError::Empty);
    }

    #[test]
    fn rejects_missing_halt() {
        assert_eq!(
            Program::new(vec![Inst::Nop]).unwrap_err(),
            ProgramError::NoHalt
        );
    }

    #[test]
    fn rejects_out_of_range_targets() {
        let err = Program::new(vec![
            Inst::Branch {
                cond: Cond::Eq,
                a: Reg::int(1),
                b: Reg::int(2),
                target: 9,
            },
            Inst::Halt,
        ])
        .unwrap_err();
        assert_eq!(err, ProgramError::BadTarget { at: 0, target: 9 });
        assert!(err.to_string().contains("out-of-range"));
    }

    #[test]
    fn accepts_well_formed() {
        let p = Program::new(vec![Inst::Jump { target: 1 }, Inst::Halt]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(1), Inst::Halt);
    }

    #[test]
    fn disassembly_lists_every_instruction_and_marks_targets() {
        let p = Program::new(vec![
            Inst::Nop,
            Inst::Branch {
                cond: Cond::Eq,
                a: Reg::int(1),
                b: Reg::int(2),
                target: 0,
            },
            Inst::Halt,
        ])
        .unwrap();
        let d = p.disassemble();
        assert_eq!(d.lines().count(), 3);
        assert!(d.lines().next().unwrap().starts_with('L'), "{d}");
        assert!(d.contains("halt"));
    }
}
