//! The instruction set: a compact extended-MIPS in the spirit of the
//! paper's simulated architecture (MIPS-I superset with register+register
//! and post-increment/decrement addressing modes, no delay slots).

use std::fmt;

use crate::reg::Reg;

/// Integer ALU operations (single-cycle, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition — propagates pretranslations (pointer arithmetic).
    Add,
    /// Subtraction — propagates pretranslations (pointer arithmetic).
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than (signed): `d = (a < b) as i64`.
    Slt,
}

impl AluOp {
    /// True for operations that move a pointer within its object —
    /// additions and subtractions of (typically small) values. These are
    /// the operations whose results inherit pretranslations (Section 3.5).
    pub fn is_pointer_arith(self) -> bool {
        matches!(self, AluOp::Add | AluOp::Sub)
    }

    /// Applies the operation to two values.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sra => a >> (b as u64 & 63),
            AluOp::Slt => i64::from(a < b),
        }
    }
}

/// Floating-point operations with their Table-1 unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// FP add (FP-adder unit, latency 2).
    Add,
    /// FP subtract (FP-adder unit, latency 2).
    Sub,
    /// FP multiply (FP-MULT unit, latency 4).
    Mul,
    /// FP divide (FP-DIV unit, latency 12, non-pipelined).
    Div,
}

impl FpuOp {
    /// Applies the operation.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::Add => a + b,
            FpuOp::Sub => a - b,
            FpuOp::Mul => a * b,
            FpuOp::Div => a / b,
        }
    }
}

/// Branch conditions over two integer registers (signed compare).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater than or equal.
    Ge,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
}

impl Cond {
    /// Evaluates the condition.
    pub fn holds(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }
}

/// Second ALU operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i32),
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Effective-address computation (the paper's extended addressing modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `base + offset` (classic MIPS displacement addressing).
    BaseOffset {
        /// Base register.
        base: Reg,
        /// Signed byte displacement.
        offset: i32,
    },
    /// `base + index` (the extended register+register mode).
    BaseIndex {
        /// Base register.
        base: Reg,
        /// Index register.
        index: Reg,
    },
    /// Effective address is `base`; after the access, `base += step`
    /// (post-increment, or post-decrement for negative `step`).
    PostInc {
        /// Base register (also written back).
        base: Reg,
        /// Signed post-adjust in bytes.
        step: i32,
    },
}

impl AddrMode {
    /// The base register of the mode (used for pretranslation tagging).
    pub fn base(self) -> Reg {
        match self {
            AddrMode::BaseOffset { base, .. }
            | AddrMode::BaseIndex { base, .. }
            | AddrMode::PostInc { base, .. } => base,
        }
    }

    /// The immediate displacement carried by the mode (zero for
    /// register+register; zero for post-increment, whose effective address
    /// is the unmodified base).
    pub fn displacement(self) -> i32 {
        match self {
            AddrMode::BaseOffset { offset, .. } => offset,
            AddrMode::BaseIndex { .. } | AddrMode::PostInc { .. } => 0,
        }
    }
}

/// One static instruction. Branch/jump targets are indices into the
/// program's instruction vector (the front end models one instruction per
/// 4-byte slot when mapping to instruction-cache blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `d = a <op> b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        d: Reg,
        /// First source register.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// `d = a * b` (integer multiply, latency 3).
    Mul {
        /// Destination register.
        d: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Reg,
    },
    /// `d = a / b` (integer divide, latency 12; divide-by-zero yields 0).
    Div {
        /// Destination register.
        d: Reg,
        /// Dividend.
        a: Reg,
        /// Divisor.
        b: Reg,
    },
    /// Floating-point `d = a <op> b` over FP registers.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination FP register.
        d: Reg,
        /// First source FP register.
        a: Reg,
        /// Second source FP register.
        b: Reg,
    },
    /// Load an immediate constant: `d = imm`.
    Li {
        /// Destination register.
        d: Reg,
        /// The constant.
        imm: i64,
    },
    /// Load from memory into `d` (integer or FP register).
    Load {
        /// Destination register.
        d: Reg,
        /// Effective-address computation.
        addr: AddrMode,
        /// Access width.
        width: Width,
    },
    /// Store register `s` to memory.
    Store {
        /// Source register (integer or FP).
        s: Reg,
        /// Effective-address computation.
        addr: AddrMode,
        /// Access width.
        width: Width,
    },
    /// Conditional branch to `target` if `cond(a, b)`.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compare register.
        a: Reg,
        /// Second compare register.
        b: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump to `target`.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, d, a, b } => match b {
                Operand::Reg(r) => write!(f, "{op:?} {d}, {a}, {r}"),
                Operand::Imm(i) => write!(f, "{op:?}i {d}, {a}, {i}"),
            },
            Inst::Mul { d, a, b } => write!(f, "mul {d}, {a}, {b}"),
            Inst::Div { d, a, b } => write!(f, "div {d}, {a}, {b}"),
            Inst::Fpu { op, d, a, b } => write!(f, "f{op:?} {d}, {a}, {b}"),
            Inst::Li { d, imm } => write!(f, "li {d}, {imm}"),
            Inst::Load { d, addr, width } => {
                write!(f, "ld{} {d}, {addr:?}", width.bytes())
            }
            Inst::Store { s, addr, width } => {
                write!(f, "st{} {s}, {addr:?}", width.bytes())
            }
            Inst::Branch { cond, a, b, target } => {
                write!(f, "b{cond:?} {a}, {b} -> @{target}")
            }
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), -1);
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN, "wrapping");
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(-1, 60), 15);
        assert_eq!(AluOp::Sra.apply(-16, 2), -4);
        assert_eq!(AluOp::Slt.apply(-1, 0), 1);
        assert_eq!(AluOp::Slt.apply(1, 0), 0);
    }

    #[test]
    fn pointer_arith_classification() {
        assert!(AluOp::Add.is_pointer_arith());
        assert!(AluOp::Sub.is_pointer_arith());
        for op in [
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
        ] {
            assert!(!op.is_pointer_arith(), "{op:?} must not carry pointers");
        }
    }

    #[test]
    fn conditions() {
        assert!(Cond::Eq.holds(2, 2) && !Cond::Eq.holds(2, 3));
        assert!(Cond::Ne.holds(2, 3));
        assert!(Cond::Lt.holds(-5, 0));
        assert!(Cond::Ge.holds(0, 0));
        assert!(Cond::Le.holds(0, 0) && Cond::Le.holds(-1, 0));
        assert!(Cond::Gt.holds(1, 0));
    }

    #[test]
    fn fpu_semantics() {
        assert_eq!(FpuOp::Add.apply(1.5, 2.5), 4.0);
        assert_eq!(FpuOp::Sub.apply(1.5, 2.5), -1.0);
        assert_eq!(FpuOp::Mul.apply(3.0, 4.0), 12.0);
        assert_eq!(FpuOp::Div.apply(1.0, 4.0), 0.25);
    }

    #[test]
    fn addr_mode_base_and_displacement() {
        let r = Reg::int(3);
        let i = Reg::int(4);
        assert_eq!(AddrMode::BaseOffset { base: r, offset: 8 }.base(), r);
        assert_eq!(
            AddrMode::BaseOffset { base: r, offset: 8 }.displacement(),
            8
        );
        assert_eq!(AddrMode::BaseIndex { base: r, index: i }.displacement(), 0);
        assert_eq!(AddrMode::PostInc { base: r, step: -8 }.base(), r);
    }

    #[test]
    fn widths() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B2.bytes(), 2);
        assert_eq!(Width::B4.bytes(), 4);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn display_is_nonempty() {
        let insts = [
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(1),
                a: Reg::int(2),
                b: Operand::Imm(4),
            },
            Inst::Li {
                d: Reg::int(1),
                imm: 9,
            },
            Inst::Halt,
            Inst::Nop,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
