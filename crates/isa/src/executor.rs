//! The functional executor: runs a [`Program`] and emits the dynamic
//! instruction trace the timing models consume.
//!
//! Execution is architecturally exact (register and memory values are
//! real), which is what makes the workload behaviour — pointer reuse,
//! spills, data-dependent branches, hash-table scatter — faithful. Timing
//! is not modelled here at all.

use hbat_core::addr::VirtAddr;

use crate::inst::Width;
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::Reg;
use crate::trace::TraceInst;
use crate::uop::{AddrKind, DecodedInst, Handler, PredecodedProgram};

/// A complete export of a [`Machine`]'s architectural register and
/// control state (everything except memory and the static program),
/// produced by [`Machine::arch_state`] and consumed by
/// [`Machine::restore_arch_state`] — the checkpoint crate serialises
/// this verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Integer register file.
    pub iregs: [i64; 32],
    /// FP register file as raw IEEE-754 bit patterns (exact round-trip).
    pub freg_bits: [u64; 32],
    /// Program counter (instruction index).
    pub pc: u32,
    /// Dynamic instructions retired.
    pub serial: u64,
    /// Has a `Halt` executed?
    pub halted: bool,
}

/// Architectural machine state plus the trace generator.
///
/// The program is predecoded once at construction into a flat
/// [`PredecodedProgram`] table, so [`Machine::step`] is an indexed
/// handler dispatch with pre-extracted operands — the `Inst` enum is
/// never re-matched on the hot path.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    code: PredecodedProgram,
    iregs: [i64; 32],
    fregs: [f64; 32],
    mem: Memory,
    pc: u32,
    serial: u64,
    halted: bool,
}

impl Machine {
    /// Creates a machine at the entry of `program` with zeroed state.
    pub fn new(program: Program) -> Self {
        let code = PredecodedProgram::from_program(&program);
        Machine {
            program,
            code,
            iregs: [0; 32],
            fregs: [0.0; 32],
            mem: Memory::new(),
            pc: 0,
            serial: 0,
            halted: false,
        }
    }

    /// The static program this machine executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The functional memory (e.g. to pre-seed workload data).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the functional memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Reads an architected register (integer or FP, FP as raw bits).
    // hbat-lint: allow(panic) register-file indices come from Reg::index(), masked to 0..32
    pub fn read_reg(&self, r: Reg) -> i64 {
        if r.is_fp() {
            self.fregs[r.index()].to_bits() as i64
        } else if r.is_zero() {
            0
        } else {
            self.iregs[r.index()]
        }
    }

    /// Writes an architected register (writes to the zero register are
    /// discarded).
    // hbat-lint: allow(panic) register-file indices come from Reg::index(), masked to 0..32
    pub fn write_reg(&mut self, r: Reg, v: i64) {
        if r.is_fp() {
            self.fregs[r.index()] = f64::from_bits(v as u64);
        } else if !r.is_zero() {
            self.iregs[r.index()] = v;
        }
    }

    /// True once a `Halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn instructions_retired(&self) -> u64 {
        self.serial
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The complete architectural register/control state, for
    /// checkpointing. FP registers are exported as raw IEEE-754 bits so
    /// a snapshot round-trip is exact even for NaN payloads.
    pub fn arch_state(&self) -> ArchState {
        let mut freg_bits = [0u64; 32];
        for (bits, f) in freg_bits.iter_mut().zip(&self.fregs) {
            *bits = f.to_bits();
        }
        ArchState {
            iregs: self.iregs,
            freg_bits,
            pc: self.pc,
            serial: self.serial,
            halted: self.halted,
        }
    }

    /// Restores previously exported architectural state onto this
    /// machine (the program itself is not part of a snapshot — the
    /// caller reconstructs the machine from the workload first).
    ///
    /// Returns `Err` if the snapshot's program counter does not name an
    /// instruction of this machine's program — the telltale of a
    /// snapshot taken from a different workload.
    pub fn restore_arch_state(&mut self, s: &ArchState) -> Result<(), String> {
        if !s.halted && (s.pc as usize) >= self.code.code().len() {
            return Err(format!(
                "snapshot pc {} out of range for a {}-instruction program",
                s.pc,
                self.code.code().len()
            ));
        }
        self.iregs = s.iregs;
        for (f, bits) in self.fregs.iter_mut().zip(&s.freg_bits) {
            *f = f64::from_bits(*bits);
        }
        self.pc = s.pc;
        self.serial = s.serial;
        self.halted = s.halted;
        Ok(())
    }

    // hbat-lint: hot — predecoded handler dispatch, one table access per step
    /// Effective address from a predecoded memory instruction's
    /// pre-extracted operands.
    #[inline(always)]
    fn decoded_ea(&self, di: &DecodedInst) -> VirtAddr {
        let base = self.read_reg(di.a) as u64;
        match di.mode {
            AddrKind::BaseOffset => VirtAddr(base.wrapping_add(di.imm as u64)),
            AddrKind::BaseIndex => VirtAddr(base.wrapping_add(self.read_reg(di.b) as u64)),
            AddrKind::PostInc => VirtAddr(base),
        }
    }

    /// Executes one instruction, returning its trace record, or `None` if
    /// the machine has halted.
    ///
    /// The dependence lists, class, and static memory/branch fields come
    /// from the predecoded template; only the serial number, effective
    /// address, and branch direction are patched per dynamic instance.
    // hbat-lint: allow(panic) register-file indices come from Reg::index(), masked to 0..32
    pub fn step(&mut self) -> Option<TraceInst> {
        if self.halted {
            return None;
        }
        let pc = self.pc;
        let di = self.code.code()[pc as usize];
        let mut next_pc = pc + 1;

        let mut t = di.template;
        t.serial = self.serial;
        match di.handler {
            Handler::Halt => {
                self.halted = true;
                return None;
            }
            Handler::Nop => {}
            Handler::Li => {
                self.write_reg(di.d, di.imm);
            }
            Handler::AluRR => {
                let v = di.alu.apply(self.read_reg(di.a), self.read_reg(di.b));
                self.write_reg(di.d, v);
            }
            Handler::AluRI => {
                let v = di.alu.apply(self.read_reg(di.a), di.imm);
                self.write_reg(di.d, v);
            }
            Handler::Mul => {
                let v = self.read_reg(di.a).wrapping_mul(self.read_reg(di.b));
                self.write_reg(di.d, v);
            }
            Handler::Div => {
                let bv = self.read_reg(di.b);
                let v = if bv == 0 {
                    0
                } else {
                    self.read_reg(di.a).wrapping_div(bv)
                };
                self.write_reg(di.d, v);
            }
            Handler::Fpu => {
                debug_assert!(di.d.is_fp() && di.a.is_fp() && di.b.is_fp());
                let v = di
                    .fpu
                    .apply(self.fregs[di.a.index()], self.fregs[di.b.index()]);
                self.fregs[di.d.index()] = v;
            }
            Handler::Load => {
                let ea = self.decoded_ea(&di);
                let raw = self.mem.read_le(ea, di.width.bytes());
                if di.d.is_fp() {
                    debug_assert_eq!(di.width, Width::B8, "FP loads are 8 bytes");
                    self.fregs[di.d.index()] = f64::from_bits(raw);
                } else if !di.d.is_zero() {
                    self.iregs[di.d.index()] = raw as i64; // zero-extended
                }
                if let Some(m) = t.mem.as_mut() {
                    m.vaddr = ea;
                }
                if di.mode == AddrKind::PostInc {
                    // Base writeback after the destination write: base wins
                    // when d == base, matching the legacy decoder.
                    let nv = self.read_reg(di.a).wrapping_add(di.imm);
                    self.write_reg(di.a, nv);
                }
            }
            Handler::Store => {
                let ea = self.decoded_ea(&di);
                let raw = if di.d.is_fp() {
                    debug_assert_eq!(di.width, Width::B8, "FP stores are 8 bytes");
                    self.fregs[di.d.index()].to_bits()
                } else {
                    self.read_reg(di.d) as u64
                };
                self.mem.write_le(ea, raw, di.width.bytes());
                if let Some(m) = t.mem.as_mut() {
                    m.vaddr = ea;
                }
                if di.mode == AddrKind::PostInc {
                    let nv = self.read_reg(di.a).wrapping_add(di.imm);
                    self.write_reg(di.a, nv);
                }
            }
            Handler::Branch => {
                let taken = di.cond.holds(self.read_reg(di.a), self.read_reg(di.b));
                if taken {
                    next_pc = di.target;
                }
                if let Some(b) = t.branch.as_mut() {
                    b.taken = taken;
                }
            }
            Handler::Jump => {
                next_pc = di.target;
            }
        }

        self.pc = next_pc;
        self.serial += 1;
        Some(t)
    }
    // hbat-lint: cold

    /// Runs until halt or `max_steps`, feeding each record to `sink`.
    /// Returns the number of instructions executed.
    pub fn run<F: FnMut(TraceInst)>(&mut self, max_steps: u64, mut sink: F) -> u64 {
        let mut n = 0;
        while n < max_steps {
            match self.step() {
                Some(t) => {
                    sink(t);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Runs until halt or `max_steps`, collecting the trace.
    pub fn run_to_vec(&mut self, max_steps: u64) -> Vec<TraceInst> {
        let mut v = Vec::new();
        self.run(max_steps, |t| v.push(t));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AddrMode, AluOp, Cond, FpuOp, Inst, Operand};
    use crate::trace::OpClass;
    use hbat_core::request::{AccessKind, WritebackKind};

    fn run_program(insts: Vec<Inst>) -> (Machine, Vec<TraceInst>) {
        let mut m = Machine::new(Program::new(insts).unwrap());
        let trace = m.run_to_vec(100_000);
        (m, trace)
    }

    #[test]
    fn li_and_alu() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 40,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(2),
                a: Reg::int(1),
                b: Operand::Imm(2),
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(2)), 42);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].dest, Some(Reg::int(2)));
        assert_eq!(trace[1].dest_kind, WritebackKind::PointerArith);
        assert_eq!(trace[1].srcs[0], Some(Reg::int(1)));
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x1000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 77,
            },
            Inst::Store {
                s: Reg::int(2),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 8,
                },
                width: Width::B8,
            },
            Inst::Load {
                d: Reg::int(3),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 8,
                },
                width: Width::B8,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(3)), 77);
        let st = trace[2].mem.unwrap();
        assert_eq!(st.vaddr, VirtAddr(0x1008));
        assert_eq!(st.kind, AccessKind::Store);
        assert_eq!(st.base_reg, Reg::int(1));
        assert_eq!(st.offset, 8);
        let ld = trace[3].mem.unwrap();
        assert_eq!(ld.kind, AccessKind::Load);
        assert_eq!(ld.vaddr, VirtAddr(0x1008));
    }

    #[test]
    fn post_increment_walks_and_writes_back() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x2000,
            },
            Inst::Load {
                d: Reg::int(2),
                addr: AddrMode::PostInc {
                    base: Reg::int(1),
                    step: 8,
                },
                width: Width::B8,
            },
            Inst::Load {
                d: Reg::int(3),
                addr: AddrMode::PostInc {
                    base: Reg::int(1),
                    step: 8,
                },
                width: Width::B8,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(1)), 0x2010);
        assert_eq!(trace[1].mem.unwrap().vaddr, VirtAddr(0x2000));
        assert_eq!(trace[2].mem.unwrap().vaddr, VirtAddr(0x2008));
        assert_eq!(trace[1].aux_dest, Some(Reg::int(1)));
    }

    #[test]
    fn base_index_addressing() {
        let (_, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x3000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 0x40,
            },
            Inst::Load {
                d: Reg::int(3),
                addr: AddrMode::BaseIndex {
                    base: Reg::int(1),
                    index: Reg::int(2),
                },
                width: Width::B4,
            },
            Inst::Halt,
        ]);
        let mem = trace[2].mem.unwrap();
        assert_eq!(mem.vaddr, VirtAddr(0x3040));
        assert_eq!(mem.offset, 0);
        assert!(trace[2].srcs.contains(&Some(Reg::int(2))));
    }

    #[test]
    fn branch_loop_executes_expected_iterations() {
        // r1 = 5; loop { r2 += r1; r1 -= 1 } while r1 > 0
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 5,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(2),
                a: Reg::int(2),
                b: Operand::Reg(Reg::int(1)),
            },
            Inst::Alu {
                op: AluOp::Sub,
                d: Reg::int(1),
                a: Reg::int(1),
                b: Operand::Imm(1),
            },
            Inst::Branch {
                cond: Cond::Gt,
                a: Reg::int(1),
                b: Reg::ZERO,
                target: 1,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(2)), 15);
        let branches: Vec<_> = trace.iter().filter_map(|t| t.branch).collect();
        assert_eq!(branches.len(), 5);
        assert!(branches[..4].iter().all(|b| b.taken));
        assert!(!branches[4].taken);
    }

    #[test]
    fn fp_pipeline() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x1000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: (2.5f64).to_bits() as i64,
            },
            Inst::Store {
                s: Reg::int(2),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 0,
                },
                width: Width::B8,
            },
            Inst::Load {
                d: Reg::fp(0),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 0,
                },
                width: Width::B8,
            },
            Inst::Fpu {
                op: FpuOp::Mul,
                d: Reg::fp(1),
                a: Reg::fp(0),
                b: Reg::fp(0),
            },
            Inst::Halt,
        ]);
        assert_eq!(m.fregs[1], 6.25);
        assert_eq!(trace[4].class, OpClass::FpMul);
    }

    #[test]
    fn zero_register_is_immutable_and_invisible_in_deps() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::ZERO,
                imm: 99,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(1),
                a: Reg::ZERO,
                b: Operand::Imm(1),
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::ZERO), 0);
        assert_eq!(m.read_reg(Reg::int(1)), 1);
        assert_eq!(trace[0].dest, None, "r0 writes create no destination");
        assert_eq!(trace[1].src_regs().count(), 0);
    }

    #[test]
    fn division_semantics() {
        let (m, _) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 42,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 5,
            },
            Inst::Div {
                d: Reg::int(3),
                a: Reg::int(1),
                b: Reg::int(2),
            },
            Inst::Div {
                d: Reg::int(4),
                a: Reg::int(1),
                b: Reg::ZERO,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(3)), 8);
        assert_eq!(m.read_reg(Reg::int(4)), 0, "divide by zero yields 0");
    }

    #[test]
    fn determinism_same_program_same_trace() {
        let prog = vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 3,
            },
            Inst::Alu {
                op: AluOp::Sub,
                d: Reg::int(1),
                a: Reg::int(1),
                b: Operand::Imm(1),
            },
            Inst::Branch {
                cond: Cond::Gt,
                a: Reg::int(1),
                b: Reg::ZERO,
                target: 1,
            },
            Inst::Halt,
        ];
        let (_, t1) = run_program(prog.clone());
        let (_, t2) = run_program(prog);
        assert_eq!(t1, t2);
    }

    #[test]
    fn serials_are_consecutive() {
        let (_, trace) = run_program(vec![Inst::Nop, Inst::Nop, Inst::Nop, Inst::Halt]);
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.serial, i as u64);
        }
    }

    #[test]
    fn run_respects_step_limit() {
        let mut m = Machine::new(Program::new(vec![Inst::Jump { target: 0 }, Inst::Halt]).unwrap());
        let n = m.run(1000, |_| {});
        assert_eq!(n, 1000);
        assert!(!m.is_halted());
    }
}
