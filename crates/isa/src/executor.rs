//! The functional executor: runs a [`Program`] and emits the dynamic
//! instruction trace the timing models consume.
//!
//! Execution is architecturally exact (register and memory values are
//! real), which is what makes the workload behaviour — pointer reuse,
//! spills, data-dependent branches, hash-table scatter — faithful. Timing
//! is not modelled here at all.

use hbat_core::addr::VirtAddr;
use hbat_core::request::{AccessKind, WritebackKind};

use crate::inst::{AddrMode, FpuOp, Inst, Operand, Width};
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::Reg;
use crate::trace::{BranchRec, MemRef, OpClass, TraceInst};

/// Architectural machine state plus the trace generator.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    iregs: [i64; 32],
    fregs: [f64; 32],
    mem: Memory,
    pc: u32,
    serial: u64,
    halted: bool,
}

impl Machine {
    /// Creates a machine at the entry of `program` with zeroed state.
    pub fn new(program: Program) -> Self {
        Machine {
            program,
            iregs: [0; 32],
            fregs: [0.0; 32],
            mem: Memory::new(),
            pc: 0,
            serial: 0,
            halted: false,
        }
    }

    /// The functional memory (e.g. to pre-seed workload data).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the functional memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Reads an architected register (integer or FP, FP as raw bits).
    // hbat-lint: allow(panic) register-file indices come from Reg::index(), masked to 0..32
    pub fn read_reg(&self, r: Reg) -> i64 {
        if r.is_fp() {
            self.fregs[r.index()].to_bits() as i64
        } else if r.is_zero() {
            0
        } else {
            self.iregs[r.index()]
        }
    }

    /// Writes an architected register (writes to the zero register are
    /// discarded).
    // hbat-lint: allow(panic) register-file indices come from Reg::index(), masked to 0..32
    pub fn write_reg(&mut self, r: Reg, v: i64) {
        if r.is_fp() {
            self.fregs[r.index()] = f64::from_bits(v as u64);
        } else if !r.is_zero() {
            self.iregs[r.index()] = v;
        }
    }

    /// True once a `Halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn instructions_retired(&self) -> u64 {
        self.serial
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    fn effective_addr(&self, mode: AddrMode) -> VirtAddr {
        match mode {
            AddrMode::BaseOffset { base, offset } => {
                VirtAddr((self.read_reg(base) as u64).wrapping_add(offset as i64 as u64))
            }
            AddrMode::BaseIndex { base, index } => {
                VirtAddr((self.read_reg(base) as u64).wrapping_add(self.read_reg(index) as u64))
            }
            AddrMode::PostInc { base, .. } => VirtAddr(self.read_reg(base) as u64),
        }
    }

    fn push_src(t: &mut TraceInst, r: Reg) {
        if r.is_zero() {
            return; // the zero register creates no dependence
        }
        for slot in &mut t.srcs {
            if slot.is_none() {
                *slot = Some(r);
                return;
            }
            if *slot == Some(r) {
                return;
            }
        }
    }

    fn set_dest(t: &mut TraceInst, r: Reg, kind: WritebackKind) {
        if !r.is_zero() {
            t.dest = Some(r);
            t.dest_kind = kind;
        }
    }

    /// Executes one instruction, returning its trace record, or `None` if
    /// the machine has halted.
    // hbat-lint: allow(panic) register-file indices come from Reg::index(), masked to 0..32
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self) -> Option<TraceInst> {
        if self.halted {
            return None;
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc);
        let mut next_pc = pc + 1;

        let mut t = TraceInst::blank(self.serial, pc, OpClass::IntAlu);
        match inst {
            Inst::Halt => {
                self.halted = true;
                return None;
            }
            Inst::Nop => {}
            Inst::Li { d, imm } => {
                Self::set_dest(&mut t, d, WritebackKind::Opaque);
                self.write_reg(d, imm);
            }
            Inst::Alu { op, d, a, b } => {
                let av = self.read_reg(a);
                Self::push_src(&mut t, a);
                let bv = match b {
                    Operand::Reg(r) => {
                        Self::push_src(&mut t, r);
                        self.read_reg(r)
                    }
                    Operand::Imm(i) => i as i64,
                };
                let kind = if op.is_pointer_arith() {
                    WritebackKind::PointerArith
                } else {
                    WritebackKind::Opaque
                };
                Self::set_dest(&mut t, d, kind);
                self.write_reg(d, op.apply(av, bv));
            }
            Inst::Mul { d, a, b } => {
                t.class = OpClass::IntMul;
                Self::push_src(&mut t, a);
                Self::push_src(&mut t, b);
                Self::set_dest(&mut t, d, WritebackKind::Opaque);
                let v = self.read_reg(a).wrapping_mul(self.read_reg(b));
                self.write_reg(d, v);
            }
            Inst::Div { d, a, b } => {
                t.class = OpClass::IntDiv;
                Self::push_src(&mut t, a);
                Self::push_src(&mut t, b);
                Self::set_dest(&mut t, d, WritebackKind::Opaque);
                let bv = self.read_reg(b);
                let v = if bv == 0 {
                    0
                } else {
                    self.read_reg(a).wrapping_div(bv)
                };
                self.write_reg(d, v);
            }
            Inst::Fpu { op, d, a, b } => {
                t.class = match op {
                    FpuOp::Add | FpuOp::Sub => OpClass::FpAdd,
                    FpuOp::Mul => OpClass::FpMul,
                    FpuOp::Div => OpClass::FpDiv,
                };
                debug_assert!(d.is_fp() && a.is_fp() && b.is_fp());
                Self::push_src(&mut t, a);
                Self::push_src(&mut t, b);
                Self::set_dest(&mut t, d, WritebackKind::Opaque);
                let v = op.apply(self.fregs[a.index()], self.fregs[b.index()]);
                self.fregs[d.index()] = v;
            }
            Inst::Load { d, addr, width } => {
                t.class = OpClass::Load;
                let base = addr.base();
                Self::push_src(&mut t, base);
                let mut index_reg = None;
                if let AddrMode::BaseIndex { index, .. } = addr {
                    Self::push_src(&mut t, index);
                    index_reg = Some(index);
                }
                let ea = self.effective_addr(addr);
                let raw = self.mem.read_le(ea, width.bytes());
                if d.is_fp() {
                    debug_assert_eq!(width, Width::B8, "FP loads are 8 bytes");
                    self.fregs[d.index()] = f64::from_bits(raw);
                } else if !d.is_zero() {
                    self.iregs[d.index()] = raw as i64; // zero-extended
                }
                Self::set_dest(&mut t, d, WritebackKind::Opaque);
                t.mem = Some(MemRef {
                    vaddr: ea,
                    kind: AccessKind::Load,
                    width,
                    base_reg: base,
                    index_reg,
                    offset: addr.displacement(),
                });
                if let AddrMode::PostInc { base, step } = addr {
                    let nv = self.read_reg(base).wrapping_add(step as i64);
                    self.write_reg(base, nv);
                    if !base.is_zero() {
                        t.aux_dest = Some(base);
                    }
                }
            }
            Inst::Store { s, addr, width } => {
                t.class = OpClass::Store;
                let base = addr.base();
                Self::push_src(&mut t, s);
                Self::push_src(&mut t, base);
                let mut index_reg = None;
                if let AddrMode::BaseIndex { index, .. } = addr {
                    Self::push_src(&mut t, index);
                    index_reg = Some(index);
                }
                let ea = self.effective_addr(addr);
                let raw = if s.is_fp() {
                    debug_assert_eq!(width, Width::B8, "FP stores are 8 bytes");
                    self.fregs[s.index()].to_bits()
                } else {
                    self.read_reg(s) as u64
                };
                self.mem.write_le(ea, raw, width.bytes());
                t.mem = Some(MemRef {
                    vaddr: ea,
                    kind: AccessKind::Store,
                    width,
                    base_reg: base,
                    index_reg,
                    offset: addr.displacement(),
                });
                if let AddrMode::PostInc { base, step } = addr {
                    let nv = self.read_reg(base).wrapping_add(step as i64);
                    self.write_reg(base, nv);
                    if !base.is_zero() {
                        t.aux_dest = Some(base);
                    }
                }
            }
            Inst::Branch { cond, a, b, target } => {
                t.class = OpClass::Branch;
                Self::push_src(&mut t, a);
                Self::push_src(&mut t, b);
                let taken = cond.holds(self.read_reg(a), self.read_reg(b));
                if taken {
                    next_pc = target;
                }
                t.branch = Some(BranchRec {
                    taken,
                    target,
                    conditional: true,
                });
            }
            Inst::Jump { target } => {
                t.class = OpClass::Branch;
                next_pc = target;
                t.branch = Some(BranchRec {
                    taken: true,
                    target,
                    conditional: false,
                });
            }
        }

        self.pc = next_pc;
        self.serial += 1;
        Some(t)
    }

    /// Runs until halt or `max_steps`, feeding each record to `sink`.
    /// Returns the number of instructions executed.
    pub fn run<F: FnMut(TraceInst)>(&mut self, max_steps: u64, mut sink: F) -> u64 {
        let mut n = 0;
        while n < max_steps {
            match self.step() {
                Some(t) => {
                    sink(t);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Runs until halt or `max_steps`, collecting the trace.
    pub fn run_to_vec(&mut self, max_steps: u64) -> Vec<TraceInst> {
        let mut v = Vec::new();
        self.run(max_steps, |t| v.push(t));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};

    fn run_program(insts: Vec<Inst>) -> (Machine, Vec<TraceInst>) {
        let mut m = Machine::new(Program::new(insts).unwrap());
        let trace = m.run_to_vec(100_000);
        (m, trace)
    }

    #[test]
    fn li_and_alu() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 40,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(2),
                a: Reg::int(1),
                b: Operand::Imm(2),
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(2)), 42);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].dest, Some(Reg::int(2)));
        assert_eq!(trace[1].dest_kind, WritebackKind::PointerArith);
        assert_eq!(trace[1].srcs[0], Some(Reg::int(1)));
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x1000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 77,
            },
            Inst::Store {
                s: Reg::int(2),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 8,
                },
                width: Width::B8,
            },
            Inst::Load {
                d: Reg::int(3),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 8,
                },
                width: Width::B8,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(3)), 77);
        let st = trace[2].mem.unwrap();
        assert_eq!(st.vaddr, VirtAddr(0x1008));
        assert_eq!(st.kind, AccessKind::Store);
        assert_eq!(st.base_reg, Reg::int(1));
        assert_eq!(st.offset, 8);
        let ld = trace[3].mem.unwrap();
        assert_eq!(ld.kind, AccessKind::Load);
        assert_eq!(ld.vaddr, VirtAddr(0x1008));
    }

    #[test]
    fn post_increment_walks_and_writes_back() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x2000,
            },
            Inst::Load {
                d: Reg::int(2),
                addr: AddrMode::PostInc {
                    base: Reg::int(1),
                    step: 8,
                },
                width: Width::B8,
            },
            Inst::Load {
                d: Reg::int(3),
                addr: AddrMode::PostInc {
                    base: Reg::int(1),
                    step: 8,
                },
                width: Width::B8,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(1)), 0x2010);
        assert_eq!(trace[1].mem.unwrap().vaddr, VirtAddr(0x2000));
        assert_eq!(trace[2].mem.unwrap().vaddr, VirtAddr(0x2008));
        assert_eq!(trace[1].aux_dest, Some(Reg::int(1)));
    }

    #[test]
    fn base_index_addressing() {
        let (_, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x3000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 0x40,
            },
            Inst::Load {
                d: Reg::int(3),
                addr: AddrMode::BaseIndex {
                    base: Reg::int(1),
                    index: Reg::int(2),
                },
                width: Width::B4,
            },
            Inst::Halt,
        ]);
        let mem = trace[2].mem.unwrap();
        assert_eq!(mem.vaddr, VirtAddr(0x3040));
        assert_eq!(mem.offset, 0);
        assert!(trace[2].srcs.contains(&Some(Reg::int(2))));
    }

    #[test]
    fn branch_loop_executes_expected_iterations() {
        // r1 = 5; loop { r2 += r1; r1 -= 1 } while r1 > 0
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 5,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(2),
                a: Reg::int(2),
                b: Operand::Reg(Reg::int(1)),
            },
            Inst::Alu {
                op: AluOp::Sub,
                d: Reg::int(1),
                a: Reg::int(1),
                b: Operand::Imm(1),
            },
            Inst::Branch {
                cond: Cond::Gt,
                a: Reg::int(1),
                b: Reg::ZERO,
                target: 1,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(2)), 15);
        let branches: Vec<_> = trace.iter().filter_map(|t| t.branch).collect();
        assert_eq!(branches.len(), 5);
        assert!(branches[..4].iter().all(|b| b.taken));
        assert!(!branches[4].taken);
    }

    #[test]
    fn fp_pipeline() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x1000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: (2.5f64).to_bits() as i64,
            },
            Inst::Store {
                s: Reg::int(2),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 0,
                },
                width: Width::B8,
            },
            Inst::Load {
                d: Reg::fp(0),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 0,
                },
                width: Width::B8,
            },
            Inst::Fpu {
                op: FpuOp::Mul,
                d: Reg::fp(1),
                a: Reg::fp(0),
                b: Reg::fp(0),
            },
            Inst::Halt,
        ]);
        assert_eq!(m.fregs[1], 6.25);
        assert_eq!(trace[4].class, OpClass::FpMul);
    }

    #[test]
    fn zero_register_is_immutable_and_invisible_in_deps() {
        let (m, trace) = run_program(vec![
            Inst::Li {
                d: Reg::ZERO,
                imm: 99,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(1),
                a: Reg::ZERO,
                b: Operand::Imm(1),
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::ZERO), 0);
        assert_eq!(m.read_reg(Reg::int(1)), 1);
        assert_eq!(trace[0].dest, None, "r0 writes create no destination");
        assert_eq!(trace[1].src_regs().count(), 0);
    }

    #[test]
    fn division_semantics() {
        let (m, _) = run_program(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 42,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 5,
            },
            Inst::Div {
                d: Reg::int(3),
                a: Reg::int(1),
                b: Reg::int(2),
            },
            Inst::Div {
                d: Reg::int(4),
                a: Reg::int(1),
                b: Reg::ZERO,
            },
            Inst::Halt,
        ]);
        assert_eq!(m.read_reg(Reg::int(3)), 8);
        assert_eq!(m.read_reg(Reg::int(4)), 0, "divide by zero yields 0");
    }

    #[test]
    fn determinism_same_program_same_trace() {
        let prog = vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 3,
            },
            Inst::Alu {
                op: AluOp::Sub,
                d: Reg::int(1),
                a: Reg::int(1),
                b: Operand::Imm(1),
            },
            Inst::Branch {
                cond: Cond::Gt,
                a: Reg::int(1),
                b: Reg::ZERO,
                target: 1,
            },
            Inst::Halt,
        ];
        let (_, t1) = run_program(prog.clone());
        let (_, t2) = run_program(prog);
        assert_eq!(t1, t2);
    }

    #[test]
    fn serials_are_consecutive() {
        let (_, trace) = run_program(vec![Inst::Nop, Inst::Nop, Inst::Nop, Inst::Halt]);
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.serial, i as u64);
        }
    }

    #[test]
    fn run_respects_step_limit() {
        let mut m = Machine::new(Program::new(vec![Inst::Jump { target: 0 }, Inst::Halt]).unwrap());
        let n = m.run(1000, |_| {});
        assert_eq!(n, 1000);
        assert!(!m.is_halted());
    }
}
