//! The predecode layer's losslessness contract, enumerated over every
//! instruction form in `inst.rs`:
//!
//! * statically, `DecodedInst::from_inst` → `reencode` reproduces the
//!   original `Inst` exactly for every variant, operand shape,
//!   addressing mode, width, register file, and immediate extreme;
//! * dynamically, executing a program that exercises every form and
//!   predecoding the resulting trace (`PredecodedTrace`) → `decode`
//!   reproduces the executor's `TraceInst` records byte-for-byte.

use hbat_isa::inst::{AddrMode, AluOp, Cond, FpuOp, Inst, Operand, Width};
use hbat_isa::uop::{DecodedInst, MicroOp, PredecodedTrace};
use hbat_isa::{Machine, Program, Reg};

const ALU_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
];
const FPU_OPS: [FpuOp; 4] = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div];
const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt];
const WIDTHS: [Width; 4] = [Width::B1, Width::B2, Width::B4, Width::B8];

/// Every address-mode shape worth distinguishing, including the
/// zero-register base (absolute addressing) and negative adjustments.
fn addr_modes() -> Vec<AddrMode> {
    let base = Reg::int(4);
    let index = Reg::int(5);
    vec![
        AddrMode::BaseOffset { base, offset: 0 },
        AddrMode::BaseOffset { base, offset: 8 },
        AddrMode::BaseOffset { base, offset: -16 },
        AddrMode::BaseOffset {
            base: Reg::ZERO,
            offset: 0x4000,
        },
        AddrMode::BaseOffset {
            base,
            offset: i32::MAX,
        },
        AddrMode::BaseOffset {
            base,
            offset: i32::MIN,
        },
        AddrMode::BaseIndex { base, index },
        AddrMode::BaseIndex {
            base: Reg::ZERO,
            index,
        },
        AddrMode::BaseIndex {
            base,
            index: Reg::ZERO,
        },
        AddrMode::PostInc { base, step: 8 },
        AddrMode::PostInc { base, step: -8 },
        AddrMode::PostInc {
            base: Reg::ZERO,
            step: 4,
        },
    ]
}

/// Every static instruction form: the full cross-products the ISA
/// admits, with both register files where loads/stores allow them.
fn every_inst_form() -> Vec<Inst> {
    let mut forms = Vec::new();
    for op in ALU_OPS {
        for b in [Operand::Reg(Reg::int(3)), Operand::Imm(7), Operand::Imm(-7)] {
            forms.push(Inst::Alu {
                op,
                d: Reg::int(1),
                a: Reg::int(2),
                b,
            });
        }
        forms.push(Inst::Alu {
            op,
            d: Reg::ZERO,
            a: Reg::ZERO,
            b: Operand::Imm(i32::MIN),
        });
        forms.push(Inst::Alu {
            op,
            d: Reg::int(1),
            a: Reg::int(1),
            b: Operand::Reg(Reg::int(1)),
        });
    }
    forms.push(Inst::Mul {
        d: Reg::int(1),
        a: Reg::int(2),
        b: Reg::int(3),
    });
    forms.push(Inst::Div {
        d: Reg::int(1),
        a: Reg::int(2),
        b: Reg::int(3),
    });
    for op in FPU_OPS {
        forms.push(Inst::Fpu {
            op,
            d: Reg::fp(1),
            a: Reg::fp(2),
            b: Reg::fp(3),
        });
    }
    for imm in [0, 1, -1, i64::MAX, i64::MIN] {
        forms.push(Inst::Li {
            d: Reg::int(1),
            imm,
        });
    }
    for addr in addr_modes() {
        for width in WIDTHS {
            for d in [Reg::int(6), Reg::fp(6)] {
                forms.push(Inst::Load { d, addr, width });
            }
            for s in [Reg::int(6), Reg::fp(6)] {
                forms.push(Inst::Store { s, addr, width });
            }
        }
    }
    for cond in CONDS {
        forms.push(Inst::Branch {
            cond,
            a: Reg::int(1),
            b: Reg::int(2),
            target: 0,
        });
        forms.push(Inst::Branch {
            cond,
            a: Reg::ZERO,
            b: Reg::ZERO,
            target: u32::MAX,
        });
    }
    forms.push(Inst::Jump { target: 0 });
    forms.push(Inst::Jump { target: 12345 });
    forms.push(Inst::Halt);
    forms.push(Inst::Nop);
    forms
}

#[test]
fn every_static_form_reencodes_exactly() {
    for (pc, inst) in every_inst_form().into_iter().enumerate() {
        let decoded = DecodedInst::from_inst(pc as u32, inst);
        assert_eq!(
            decoded.reencode(),
            inst,
            "form {inst} does not survive predecode"
        );
    }
}

/// A runnable program touching every handler, every addressing mode,
/// every width, both register files, taken and not-taken branches.
fn exercise_program() -> Program {
    let mut code = vec![
        // Register setup: an in-bounds data pointer and small values.
        Inst::Li {
            d: Reg::int(4),
            imm: 0x100,
        },
        Inst::Li {
            d: Reg::int(5),
            imm: 8,
        },
        Inst::Li {
            d: Reg::int(2),
            imm: 21,
        },
        Inst::Li {
            d: Reg::int(3),
            imm: 2,
        },
    ];
    for op in ALU_OPS {
        code.push(Inst::Alu {
            op,
            d: Reg::int(1),
            a: Reg::int(2),
            b: Operand::Reg(Reg::int(3)),
        });
        code.push(Inst::Alu {
            op,
            d: Reg::int(1),
            a: Reg::int(2),
            b: Operand::Imm(3),
        });
    }
    code.push(Inst::Mul {
        d: Reg::int(1),
        a: Reg::int(2),
        b: Reg::int(3),
    });
    code.push(Inst::Div {
        d: Reg::int(1),
        a: Reg::int(2),
        b: Reg::int(3),
    });
    code.push(Inst::Div {
        d: Reg::int(1),
        a: Reg::int(2),
        b: Reg::ZERO, // divide-by-zero path
    });
    for op in FPU_OPS {
        code.push(Inst::Fpu {
            op,
            d: Reg::fp(1),
            a: Reg::fp(2),
            b: Reg::fp(3),
        });
    }
    // Loads and stores: every mode; every width for int registers, the
    // full doubleword for FP.
    let modes = [
        AddrMode::BaseOffset {
            base: Reg::int(4),
            offset: 16,
        },
        AddrMode::BaseIndex {
            base: Reg::int(4),
            index: Reg::int(5),
        },
        AddrMode::PostInc {
            base: Reg::int(4),
            step: 8,
        },
        AddrMode::BaseOffset {
            base: Reg::ZERO,
            offset: 0x140,
        },
    ];
    for addr in modes {
        for width in WIDTHS {
            code.push(Inst::Store {
                s: Reg::int(2),
                addr,
                width,
            });
            code.push(Inst::Load {
                d: Reg::int(6),
                addr,
                width,
            });
        }
        code.push(Inst::Store {
            s: Reg::fp(2),
            addr,
            width: Width::B8,
        });
        code.push(Inst::Load {
            d: Reg::fp(6),
            addr,
            width: Width::B8,
        });
    }
    // Branches: each condition both taken and not taken (r2=21 > r3=2,
    // so cond(a,b) and cond(b,a) disagree for every ordering cond, and
    // eq/ne flip between (r2,r2) and (r2,r3)).
    let next = |code: &[Inst]| code.len() as u32 + 1;
    for cond in CONDS {
        code.push(Inst::Branch {
            cond,
            a: Reg::int(2),
            b: Reg::int(3),
            target: next(&code),
        });
        code.push(Inst::Branch {
            cond,
            a: Reg::int(3),
            b: Reg::int(2),
            target: next(&code),
        });
        code.push(Inst::Branch {
            cond,
            a: Reg::int(2),
            b: Reg::int(2),
            target: next(&code),
        });
    }
    let jump_target = code.len() as u32 + 1;
    code.push(Inst::Jump {
        target: jump_target,
    });
    code.push(Inst::Nop);
    code.push(Inst::Halt);
    Program::new(code).expect("exercise program is well-formed")
}

#[test]
fn executed_trace_of_every_form_round_trips() {
    let trace = Machine::new(exercise_program()).run_to_vec(10_000);
    assert!(trace.len() > 80, "exercise program barely ran");

    // Per-record: encode → decode is the identity.
    for t in &trace {
        let u = MicroOp::encode(t);
        assert_eq!(u.decode(), *t, "record {} not lossless", t.serial);
    }

    // Whole-trace: PredecodedTrace preserves order and content.
    let uops = PredecodedTrace::predecode(&trace);
    assert_eq!(uops.decode(), trace);
}

#[test]
fn predecoded_program_reencodes_the_whole_program() {
    use hbat_isa::uop::PredecodedProgram;
    let program = exercise_program();
    let predecoded = PredecodedProgram::from_program(&program);
    assert_eq!(predecoded.reencode(), program.instructions());
}
