//! Property-based tests for the ISA and functional executor.

use proptest::prelude::*;

use std::panic::{catch_unwind, AssertUnwindSafe};

use hbat_core::addr::VirtAddr;
use hbat_isa::executor::Machine;
use hbat_isa::inst::{AddrMode, AluOp, Cond, Inst, Operand, Width};
use hbat_isa::mem::Memory;
use hbat_isa::program::Program;
use hbat_isa::reg::Reg;
use hbat_isa::tracefile::{read_trace, write_trace};

/// Strategy: a random straight-line ALU/memory program over registers
/// r1..r7 that is always valid (targets in range, halt at end).
fn straightline() -> impl Strategy<Value = Vec<Inst>> {
    let reg = (1u8..8).prop_map(Reg::int);
    let op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Slt),
    ];
    let inst = prop_oneof![
        (reg.clone(), -1000i64..1000).prop_map(|(d, imm)| Inst::Li { d, imm }),
        (op, reg.clone(), reg.clone(), reg.clone()).prop_map(|(op, d, a, b)| Inst::Alu {
            op,
            d,
            a,
            b: Operand::Reg(b)
        }),
        (reg.clone(), reg.clone(), 0i32..256).prop_map(|(d, base, off)| Inst::Load {
            d,
            addr: AddrMode::BaseOffset {
                base,
                offset: off & !7
            },
            width: Width::B8,
        }),
        (reg.clone(), reg.clone(), 0i32..256).prop_map(|(s, base, off)| Inst::Store {
            s,
            addr: AddrMode::BaseOffset {
                base,
                offset: off & !7
            },
            width: Width::B8,
        }),
    ];
    prop::collection::vec(inst, 1..60).prop_map(|mut v| {
        // Anchor the base registers in a sane address region first.
        let mut prog = vec![
            Inst::Li {
                d: Reg::int(1),
                imm: 0x10_0000,
            },
            Inst::Li {
                d: Reg::int(2),
                imm: 0x10_1000,
            },
        ];
        prog.append(&mut v);
        prog.push(Inst::Halt);
        prog
    })
}

proptest! {
    /// Execution is deterministic: identical programs produce identical
    /// traces and final register files.
    #[test]
    fn executor_is_deterministic(insts in straightline()) {
        let p = Program::new(insts).expect("generated programs are valid");
        let mut m1 = Machine::new(p.clone());
        let mut m2 = Machine::new(p);
        let t1 = m1.run_to_vec(10_000);
        let t2 = m2.run_to_vec(10_000);
        prop_assert_eq!(t1, t2);
        for r in 0..32 {
            prop_assert_eq!(
                m1.read_reg(Reg::int(r)),
                m2.read_reg(Reg::int(r))
            );
        }
    }

    /// The zero register reads zero whatever the program does, and every
    /// trace record's serial matches its position.
    #[test]
    fn zero_register_and_serials_hold(insts in straightline()) {
        let p = Program::new(insts).expect("valid");
        let mut m = Machine::new(p);
        let trace = m.run_to_vec(10_000);
        prop_assert_eq!(m.read_reg(Reg::ZERO), 0);
        for (i, t) in trace.iter().enumerate() {
            prop_assert_eq!(t.serial, i as u64);
            // No record ever lists r0 as a dependence.
            prop_assert!(t.src_regs().all(|r| !r.is_zero()));
            prop_assert!(t.dest_regs().all(|r| !r.is_zero()));
        }
    }

    /// Differential test: the executor agrees with an independent
    /// reference interpreter on final registers and every effective
    /// address, for any straight-line program.
    #[test]
    fn executor_matches_reference_interpreter(insts in straightline()) {
        // Reference interpreter for the straight-line subset, with
        // byte-granular memory (accesses may overlap arbitrarily).
        let mut regs = [0i64; 32];
        let mut mem: std::collections::HashMap<u64, u8> =
            std::collections::HashMap::new();
        let read8 = |mem: &std::collections::HashMap<u64, u8>, ea: u64| -> u64 {
            (0..8u64)
                .map(|i| (*mem.get(&ea.wrapping_add(i)).unwrap_or(&0) as u64) << (8 * i))
                .sum()
        };
        let mut ref_addrs = Vec::new();
        for inst in &insts {
            match *inst {
                Inst::Li { d, imm } => {
                    if !d.is_zero() {
                        regs[d.index()] = imm;
                    }
                }
                Inst::Alu { op, d, a, b } => {
                    let bv = match b {
                        Operand::Reg(r) => regs[r.index()],
                        Operand::Imm(i) => i as i64,
                    };
                    let v = op.apply(regs[a.index()], bv);
                    if !d.is_zero() {
                        regs[d.index()] = v;
                    }
                }
                Inst::Load { d, addr: AddrMode::BaseOffset { base, offset }, .. } => {
                    let ea = (regs[base.index()] as u64)
                        .wrapping_add(offset as i64 as u64);
                    ref_addrs.push(ea);
                    let v = read8(&mem, ea);
                    if !d.is_zero() {
                        regs[d.index()] = v as i64;
                    }
                }
                Inst::Store { s, addr: AddrMode::BaseOffset { base, offset }, .. } => {
                    let ea = (regs[base.index()] as u64)
                        .wrapping_add(offset as i64 as u64);
                    ref_addrs.push(ea);
                    let v = regs[s.index()] as u64;
                    for i in 0..8u64 {
                        mem.insert(ea.wrapping_add(i), (v >> (8 * i)) as u8);
                    }
                }
                Inst::Halt => break,
                ref other => prop_assert!(false, "unexpected inst {other:?}"),
            }
        }

        let p = Program::new(insts).expect("valid");
        let mut m = Machine::new(p);
        let trace = m.run_to_vec(10_000);
        prop_assert!(m.is_halted());
        for r in 0..32 {
            prop_assert_eq!(
                m.read_reg(Reg::int(r)),
                regs[r as usize],
                "register r{} diverged",
                r
            );
        }
        let exec_addrs: Vec<u64> = trace
            .iter()
            .filter_map(|t| t.mem.map(|mm| mm.vaddr.0))
            .collect();
        prop_assert_eq!(exec_addrs, ref_addrs);
        // Stored memory agrees too.
        for (&ea, &v) in &mem {
            prop_assert_eq!(m.memory().read_u8(VirtAddr(ea)), v);
        }
    }

    /// ALU algebraic identities hold for all inputs.
    #[test]
    fn alu_identities(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), AluOp::Add.apply(b, a));
        prop_assert_eq!(AluOp::Xor.apply(AluOp::Xor.apply(a, b), b), a);
        prop_assert_eq!(AluOp::Sub.apply(a, a), 0);
        prop_assert_eq!(AluOp::And.apply(a, a), a);
        prop_assert_eq!(AluOp::Or.apply(a, 0), a);
        prop_assert_eq!(
            i64::from(AluOp::Slt.apply(a, b) == 1),
            i64::from(a < b)
        );
    }

    /// Branch conditions partition: exactly one of (lt, eq, gt) holds, and
    /// compound conditions agree with their parts.
    #[test]
    fn condition_trichotomy(a in any::<i64>(), b in any::<i64>()) {
        let lt = Cond::Lt.holds(a, b);
        let eq = Cond::Eq.holds(a, b);
        let gt = Cond::Gt.holds(a, b);
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        prop_assert_eq!(Cond::Le.holds(a, b), lt || eq);
        prop_assert_eq!(Cond::Ge.holds(a, b), gt || eq);
        prop_assert_eq!(Cond::Ne.holds(a, b), !eq);
    }

    /// Truncating a serialised trace at *every* byte offset yields a
    /// clean `Err` — never a panic and never an OOM-sized allocation
    /// (the declared record count only bounds a capped pre-allocation).
    #[test]
    fn truncated_traces_always_error(insts in straightline()) {
        let p = Program::new(insts).expect("valid");
        let trace = Machine::new(p).run_to_vec(10_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialise");
        for cut in 0..buf.len() {
            match catch_unwind(AssertUnwindSafe(|| read_trace(&mut &buf[..cut]))) {
                Ok(parsed) => prop_assert!(
                    parsed.is_err(),
                    "truncation at byte {} of {} was accepted",
                    cut,
                    buf.len()
                ),
                Err(_) => prop_assert!(false, "read_trace panicked at cut {}", cut),
            }
        }
        // The intact buffer still round-trips.
        prop_assert_eq!(read_trace(&mut buf.as_slice()).expect("intact"), trace);
    }

    /// Flipping any bit of the 16-byte header (magic + record count)
    /// yields a clean `Err`: a corrupted magic is rejected outright, a
    /// grown count hits end-of-stream, and a shrunk count leaves
    /// trailing bytes — all detected, none panicking or pre-allocating
    /// by the corrupt count.
    #[test]
    fn header_bit_flips_always_error(insts in straightline()) {
        let p = Program::new(insts).expect("valid");
        let trace = Machine::new(p).run_to_vec(10_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialise");
        for byte in 0..16 {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                match catch_unwind(AssertUnwindSafe(|| read_trace(&mut corrupt.as_slice()))) {
                    Ok(parsed) => prop_assert!(
                        parsed.is_err(),
                        "flip of header byte {} bit {} was accepted",
                        byte,
                        bit
                    ),
                    Err(_) => prop_assert!(
                        false,
                        "read_trace panicked on header byte {} bit {}",
                        byte,
                        bit
                    ),
                }
            }
        }
    }

    /// `read_trace` never panics on arbitrary input bytes.
    #[test]
    fn read_trace_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = read_trace(&mut bytes.as_slice());
        }));
        prop_assert!(r.is_ok(), "read_trace panicked on arbitrary bytes");
    }

    /// Memory round-trips arbitrary values at arbitrary (possibly
    /// chunk-straddling) addresses and widths.
    #[test]
    fn memory_round_trip(addr in 0u64..1_000_000, val in any::<u64>(), w in 0usize..4) {
        let widths = [Width::B1, Width::B2, Width::B4, Width::B8];
        let width = widths[w];
        let mut m = Memory::new();
        m.write_le(VirtAddr(addr), val, width.bytes());
        let mask = if width.bytes() == 8 { u64::MAX } else { (1 << (8 * width.bytes())) - 1 };
        prop_assert_eq!(m.read_le(VirtAddr(addr), width.bytes()), val & mask);
    }
}
