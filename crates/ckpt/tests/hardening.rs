//! Adversarial hardening of the snapshot reader, in the mould of the
//! `read_trace` hardening: the decoder must return a typed error — never
//! panic, never silently succeed — for *every* truncation offset, every
//! header bit flip, and arbitrary byte-level mutations. Deterministic
//! exhaustive loops cover the structured cases; the proptest sweep fires
//! random shotgun corruption at the rest.

use proptest::prelude::*;

use hbat_ckpt::format::checksum_of;
use hbat_ckpt::{CkptError, Snapshot};
use hbat_cpu::WarmExport;
use hbat_isa::executor::ArchState;
use hbat_isa::mem::Memory;

fn sample() -> Snapshot {
    Snapshot {
        bench: "Compress".to_owned(),
        fingerprint: "0123456789abcdef".to_owned(),
        index: 123_456,
        arch: ArchState {
            iregs: std::array::from_fn(|i| (i as i64).wrapping_mul(-0x0123_4567_89ab)),
            freg_bits: std::array::from_fn(|i| (i as u64).rotate_left(i as u32 * 2) ^ 0xDEAD),
            pc: 77,
            serial: 123_456,
            halted: false,
        },
        mem_chunks: vec![
            (0x0000, vec![0x5A; Memory::chunk_bytes()]),
            (
                0x3000,
                (0..Memory::chunk_bytes()).map(|i| (i * 7) as u8).collect(),
            ),
            (0x9000, vec![0; Memory::chunk_bytes()]),
        ],
        warm: WarmExport {
            pages: vec![0, 3, 9],
            tlb: vec![(3, 100), (0, 101), (9, 102)],
            dblocks: vec![(0x3000, 50), (0x3040, 51)],
            iblocks: vec![(0, 1), (64, 2), (128, 3)],
            stamp: 103,
            ghr: 0x5A,
            pht: (0..4096).map(|i| (i % 4) as u8).collect(),
        },
    }
}

/// Every truncation length from empty to one-byte-short errors cleanly.
#[test]
fn every_truncation_offset_errors_cleanly() {
    let bytes = sample().encode();
    for cut in 0..bytes.len() {
        let r = Snapshot::decode(&bytes[..cut]);
        assert!(
            matches!(r, Err(CkptError::Truncated { .. })),
            "cut at {cut}/{}: got {r:?}",
            bytes.len()
        );
    }
}

/// Every bit of the 20-byte header, flipped, errors with the right type.
#[test]
fn every_header_bit_flip_errors_cleanly() {
    let bytes = sample().encode();
    for byte in 0..20 {
        for bit in 0..8 {
            let mut c = bytes.clone();
            c[byte] ^= 1 << bit;
            let r = Snapshot::decode(&c);
            match byte {
                0..=7 => assert!(
                    matches!(r, Err(CkptError::BadMagic)),
                    "magic byte {byte} bit {bit}: {r:?}"
                ),
                8..=11 => assert!(
                    matches!(r, Err(CkptError::UnsupportedVersion(_))),
                    "version byte {byte} bit {bit}: {r:?}"
                ),
                _ => assert!(
                    matches!(
                        r,
                        Err(CkptError::Truncated { .. }
                            | CkptError::TrailingBytes { .. }
                            | CkptError::LengthMismatch { .. })
                    ),
                    "length byte {byte} bit {bit}: {r:?}"
                ),
            }
        }
    }
}

/// Every single-bit flip in the body or trailer is caught by the
/// checksum (or a stricter structural check) — exhaustive over bytes,
/// sampled over bits.
#[test]
fn every_body_byte_flip_is_detected() {
    let bytes = sample().encode();
    for byte in 20..bytes.len() {
        let mut c = bytes.clone();
        c[byte] ^= 1 << (byte % 8);
        assert!(
            Snapshot::decode(&c).is_err(),
            "flip at body byte {byte} must not decode"
        );
    }
}

/// Trailing garbage after a valid snapshot is rejected, whatever it is.
#[test]
fn trailing_bytes_rejected_for_any_suffix() {
    let bytes = sample().encode();
    for extra in [1usize, 7, 8, 4096] {
        let mut c = bytes.clone();
        c.extend(std::iter::repeat_n(0xEE, extra));
        assert!(
            matches!(Snapshot::decode(&c), Err(CkptError::TrailingBytes { extra: e }) if e == extra),
            "suffix of {extra}"
        );
    }
}

/// A checksum-correct file whose section counts lie cannot drive
/// allocation: the count/length cross-check fires first.
#[test]
fn resigned_hostile_counts_stay_typed() {
    let bytes = sample().encode();
    for tag in [*b"WPGS", *b"WTLB", *b"WDBK", *b"WIBK", *b"MEM."] {
        let pos = bytes
            .windows(4)
            .position(|w| w == tag)
            .expect("section tag present");
        for hostile in [u64::MAX, u64::MAX / 2, 1 << 60] {
            let mut c = bytes.clone();
            let count_at = pos + 4 + 8; // tag + section length
            c[count_at..count_at + 8].copy_from_slice(&hostile.to_le_bytes());
            // Re-sign so only the count is wrong.
            let body_end = c.len() - 8;
            let sum = checksum_of(&c[..body_end]);
            c[body_end..].copy_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(Snapshot::decode(&c), Err(CkptError::Malformed(_))),
                "{:?} count {hostile}",
                String::from_utf8_lossy(&tag)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary multi-byte corruption anywhere in the file either fails
    /// with a typed error or (XOR with 0 everywhere) decodes to the
    /// original — it never panics and never yields altered state.
    #[test]
    fn shotgun_corruption_never_panics_or_lies(
        offset in 0usize..4096,
        len in 1usize..64,
        xor in any::<u8>(),
    ) {
        let original = sample();
        let bytes = original.encode();
        let mut c = bytes.clone();
        let start = offset % c.len();
        for i in start..(start + len).min(c.len()) {
            c[i] ^= xor;
        }
        // A typed rejection is the expected outcome; a clean decode must
        // be the untouched original.
        if let Ok(decoded) = Snapshot::decode(&c) {
            prop_assert_eq!(decoded, original);
        }
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(
        seed in any::<u64>(),
        len in 0usize..2048,
    ) {
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let _ = Snapshot::decode(&bytes);
        // Also with a valid magic+version prefix grafted on, so parsing
        // gets past the header into the structural checks.
        let mut grafted = b"HBATCKP1\x01\x00\x00\x00".to_vec();
        grafted.extend_from_slice(&bytes);
        let _ = Snapshot::decode(&grafted);
    }

    /// Truncating after re-signing still errors: integrity and length
    /// checks are independent layers.
    #[test]
    fn truncation_of_resigned_files_still_errors(cut_frac in 0usize..100) {
        let bytes = sample().encode();
        let cut = bytes.len() * cut_frac / 100;
        let mut c = bytes[..cut].to_vec();
        if c.len() > 28 {
            let body_end = c.len() - 8;
            let sum = checksum_of(&c[..body_end]);
            c[body_end..].copy_from_slice(&sum.to_le_bytes());
        }
        prop_assert!(Snapshot::decode(&c).is_err());
    }
}
