//! The snapshot wire format: versioned, length-prefixed, checksummed.
//!
//! ```text
//! offset 0   magic      "HBATCKP1"
//! offset 8   version    u32 LE (currently 1)
//! offset 12  total_len  u64 LE — whole file, checksum included
//! offset 20  body       identity + tagged sections (below)
//! len-8      checksum   u64 LE — FNV-1a-64 over bytes[0 .. len-8]
//! ```
//!
//! The body is the snapshot identity (benchmark name, configuration
//! fingerprint, instruction index) followed by a section count and the
//! sections themselves, each `tag[4] + u64 length + payload`, in a fixed
//! order for version 1: `REGS` (architectural registers), `MEM.`
//! (functional memory chunks, ascending), `WPGS`/`WTLB`/`WDBK`/`WIBK`/
//! `WSTM`/`BPRD` (the exact warm accumulator), and `MSHR` (in-flight
//! miss count — always zero: snapshots are taken at functional quiesce
//! points only, and a nonzero count is rejected as [`CkptError::NonQuiescent`]).
//!
//! Decoding is hardened the way `read_trace` was: every read is
//! bounds-checked (truncation at any byte is a typed error, never a
//! panic), element counts are validated against section lengths before
//! any allocation, preallocation is capped, and trailing bytes after the
//! checksum are rejected.

use hbat_cpu::WarmExport;
use hbat_isa::executor::ArchState;
use hbat_isa::mem::Memory;

/// Current snapshot format version.
pub const CKPT_VERSION: u32 = 1;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"HBATCKP1";

/// Upper bound on speculative `Vec` preallocation while decoding.
const MAX_PREALLOC: usize = 1 << 16;

/// Longest accepted benchmark-name or fingerprint string.
const MAX_IDENT: usize = 256;

/// Section order for version 1.
const SECTION_TAGS: [[u8; 4]; 9] = [
    *b"REGS", *b"MEM.", *b"WPGS", *b"WTLB", *b"WDBK", *b"WIBK", *b"WSTM", *b"BPRD", *b"MSHR",
];

/// Everything a resumed run needs: identity, architectural state,
/// functional memory, and the exact warm-state accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Benchmark name this snapshot belongs to.
    pub bench: String,
    /// Configuration fingerprint (ties the snapshot to one experiment
    /// setup, fast-forward boundary included).
    pub fingerprint: String,
    /// Committed-instruction index the snapshot was taken at.
    pub index: u64,
    /// Architectural registers and program position.
    pub arch: ArchState,
    /// Functional memory as `(base address, chunk bytes)`, ascending.
    pub mem_chunks: Vec<(u64, Vec<u8>)>,
    /// Exact warm-accumulator state.
    pub warm: WarmExport,
}

/// Why a snapshot was rejected (or could not be produced).
#[derive(Debug)]
pub enum CkptError {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The format version is one this build does not read.
    UnsupportedVersion(u32),
    /// The buffer ends before the structure does.
    Truncated {
        /// Byte offset at which the read ran out.
        at: usize,
    },
    /// The header's total length disagrees with the structure.
    LengthMismatch {
        /// Length the header claims.
        header: u64,
        /// Length actually present or consumed.
        actual: u64,
    },
    /// Bytes follow the checksum trailer.
    TrailingBytes {
        /// How many extra bytes.
        extra: usize,
    },
    /// The FNV-1a trailer does not match the contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the contents.
        computed: u64,
    },
    /// Structurally invalid contents (bad counts, misordered chunks…).
    Malformed(String),
    /// The snapshot belongs to a different configuration.
    FingerprintMismatch {
        /// Fingerprint the restorer expected.
        expected: String,
        /// Fingerprint found in the snapshot.
        found: String,
    },
    /// The snapshot belongs to a different benchmark.
    BenchMismatch {
        /// Benchmark the restorer expected.
        expected: String,
        /// Benchmark found in the snapshot.
        found: String,
    },
    /// The snapshot claims in-flight microarchitectural state; version-1
    /// snapshots are only taken at functional quiesce points.
    NonQuiescent,
    /// Fast-forward was cancelled before reaching its target.
    Cancelled,
    /// An I/O error while reading or writing a snapshot.
    Io(std::io::Error),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {CKPT_VERSION})"
                )
            }
            CkptError::Truncated { at } => write!(f, "checkpoint truncated at byte {at}"),
            CkptError::LengthMismatch { header, actual } => {
                write!(
                    f,
                    "checkpoint length mismatch: header says {header}, found {actual}"
                )
            }
            CkptError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after checkpoint checksum")
            }
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CkptError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CkptError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found} does not match configuration {expected}"
            ),
            CkptError::BenchMismatch { expected, found } => {
                write!(f, "checkpoint is for benchmark {found}, not {expected}")
            }
            CkptError::NonQuiescent => {
                write!(f, "checkpoint claims in-flight state (not a quiesce point)")
            }
            CkptError::Cancelled => write!(f, "fast-forward cancelled"),
            CkptError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// FNV-1a-64 over a byte slice — the trailer checksum. Public so tests
/// (and fault injectors) can craft snapshots with *valid* checksums but
/// altered fields, proving the typed checks beyond the checksum fire.
pub fn checksum_of(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- encoding ------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

impl Snapshot {
    /// Serialises the snapshot: header, identity, sections, checksum.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark name or fingerprint exceeds 256 bytes, or
    /// if a memory chunk is not exactly one functional-memory chunk —
    /// producer-side invariants, not input conditions.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.bench.len() <= MAX_IDENT, "bench name too long");
        assert!(self.fingerprint.len() <= MAX_IDENT, "fingerprint too long");

        let mut out =
            Vec::with_capacity(1024 + self.mem_chunks.len() * (8 + Memory::chunk_bytes()));
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, CKPT_VERSION);
        let len_at = out.len();
        put_u64(&mut out, 0); // total_len backpatched below

        put_str(&mut out, &self.bench);
        put_str(&mut out, &self.fingerprint);
        put_u64(&mut out, self.index);
        put_u32(&mut out, SECTION_TAGS.len() as u32);

        let mut sec = Vec::new();

        // REGS
        for r in &self.arch.iregs {
            put_u64(&mut sec, *r as u64);
        }
        for b in &self.arch.freg_bits {
            put_u64(&mut sec, *b);
        }
        put_u32(&mut sec, self.arch.pc);
        put_u64(&mut sec, self.arch.serial);
        sec.push(u8::from(self.arch.halted));
        put_section(&mut out, SECTION_TAGS[0], &sec);
        sec.clear();

        // MEM.
        put_u64(&mut sec, self.mem_chunks.len() as u64);
        for (base, bytes) in &self.mem_chunks {
            assert_eq!(bytes.len(), Memory::chunk_bytes(), "chunk size invariant");
            put_u64(&mut sec, *base);
            sec.extend_from_slice(bytes);
        }
        put_section(&mut out, SECTION_TAGS[1], &sec);
        sec.clear();

        // WPGS
        put_u64(&mut sec, self.warm.pages.len() as u64);
        for p in &self.warm.pages {
            put_u64(&mut sec, *p);
        }
        put_section(&mut out, SECTION_TAGS[2], &sec);
        sec.clear();

        // WTLB / WDBK / WIBK
        for (tag, pairs) in [
            (SECTION_TAGS[3], &self.warm.tlb),
            (SECTION_TAGS[4], &self.warm.dblocks),
            (SECTION_TAGS[5], &self.warm.iblocks),
        ] {
            put_u64(&mut sec, pairs.len() as u64);
            for (k, s) in pairs {
                put_u64(&mut sec, *k);
                put_u64(&mut sec, *s);
            }
            put_section(&mut out, tag, &sec);
            sec.clear();
        }

        // WSTM
        put_u64(&mut sec, self.warm.stamp);
        put_section(&mut out, SECTION_TAGS[6], &sec);
        sec.clear();

        // BPRD
        put_u32(&mut sec, self.warm.ghr);
        put_u64(&mut sec, self.warm.pht.len() as u64);
        sec.extend_from_slice(&self.warm.pht);
        put_section(&mut out, SECTION_TAGS[7], &sec);
        sec.clear();

        // MSHR — always zero in-flight entries at a quiesce point.
        put_u64(&mut sec, 0);
        put_section(&mut out, SECTION_TAGS[8], &sec);

        let total = (out.len() + 8) as u64;
        out[len_at..len_at + 8].copy_from_slice(&total.to_le_bytes());
        let sum = checksum_of(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes and integrity-checks a snapshot. Identity (bench and
    /// fingerprint) is *not* checked here — use
    /// [`verify_identity`](Snapshot::verify_identity) — so inspection
    /// tools can read any valid snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CkptError> {
        // Header: magic, version, total length.
        if bytes.len() < 20 {
            return Err(CkptError::Truncated { at: bytes.len() });
        }
        if bytes[..8] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != CKPT_VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let total = u64::from_le_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
        ]);
        let actual = bytes.len() as u64;
        if total < 28 {
            // Can't even hold header + checksum: a corrupt length field.
            return Err(CkptError::LengthMismatch {
                header: total,
                actual,
            });
        }
        if actual < total {
            return Err(CkptError::Truncated { at: bytes.len() });
        }
        if actual > total {
            return Err(CkptError::TrailingBytes {
                extra: (actual - total) as usize,
            });
        }

        // Checksum trailer over everything before it.
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(
            // hbat-lint: allow(panic-reach) body_end >= 20 was established above
            bytes[body_end..].try_into().expect("8-byte trailer"),
        );
        let computed = checksum_of(&bytes[..body_end]);
        if stored != computed {
            return Err(CkptError::ChecksumMismatch { stored, computed });
        }

        let mut cur = Cur {
            b: &bytes[..body_end],
            pos: 20,
        };
        let bench = cur.ident("bench")?;
        let fingerprint = cur.ident("fingerprint")?;
        let index = cur.u64()?;
        let nsections = cur.u32()? as usize;
        if nsections != SECTION_TAGS.len() {
            return Err(CkptError::Malformed(format!(
                "version-1 snapshots have {} sections, found {nsections}",
                SECTION_TAGS.len()
            )));
        }

        let mut snap = Snapshot {
            bench,
            fingerprint,
            index,
            arch: ArchState {
                iregs: [0; 32],
                freg_bits: [0; 32],
                pc: 0,
                serial: 0,
                halted: false,
            },
            mem_chunks: Vec::new(),
            warm: WarmExport::default(),
        };

        for tag in SECTION_TAGS {
            let found: [u8; 4] = cur.take(4)?.try_into().unwrap_or([0; 4]);
            if found != tag {
                return Err(CkptError::Malformed(format!(
                    "expected section {:?}, found {:?}",
                    String::from_utf8_lossy(&tag),
                    String::from_utf8_lossy(&found)
                )));
            }
            let len = cur.u64()? as usize;
            let start = cur.pos;
            let payload = cur.take(len)?;
            let mut s = Cur { b: payload, pos: 0 };
            match &tag {
                b"REGS" => {
                    for r in &mut snap.arch.iregs {
                        *r = s.u64()? as i64;
                    }
                    for b in &mut snap.arch.freg_bits {
                        *b = s.u64()?;
                    }
                    snap.arch.pc = s.u32()?;
                    snap.arch.serial = s.u64()?;
                    snap.arch.halted = match s.take(1)?[0] {
                        0 => false,
                        1 => true,
                        v => return Err(CkptError::Malformed(format!("bad halted flag {v}"))),
                    };
                }
                b"MEM." => {
                    let count = s.count(8 + Memory::chunk_bytes())?;
                    snap.mem_chunks = Vec::with_capacity(count.min(MAX_PREALLOC));
                    let mut prev: Option<u64> = None;
                    for _ in 0..count {
                        let base = s.u64()?;
                        if prev.is_some_and(|p| base <= p) {
                            return Err(CkptError::Malformed(
                                "memory chunks out of order".to_owned(),
                            ));
                        }
                        prev = Some(base);
                        let data = s.take(Memory::chunk_bytes())?.to_vec();
                        snap.mem_chunks.push((base, data));
                    }
                }
                b"WPGS" => {
                    let count = s.count(8)?;
                    snap.warm.pages = Vec::with_capacity(count.min(MAX_PREALLOC));
                    for _ in 0..count {
                        snap.warm.pages.push(s.u64()?);
                    }
                }
                b"WTLB" | b"WDBK" | b"WIBK" => {
                    let count = s.count(16)?;
                    let mut pairs = Vec::with_capacity(count.min(MAX_PREALLOC));
                    for _ in 0..count {
                        let k = s.u64()?;
                        let st = s.u64()?;
                        pairs.push((k, st));
                    }
                    match &tag {
                        b"WTLB" => snap.warm.tlb = pairs,
                        b"WDBK" => snap.warm.dblocks = pairs,
                        _ => snap.warm.iblocks = pairs,
                    }
                }
                b"WSTM" => {
                    snap.warm.stamp = s.u64()?;
                }
                b"BPRD" => {
                    snap.warm.ghr = s.u32()?;
                    let count = s.count(1)?;
                    snap.warm.pht = s.take(count)?.to_vec();
                }
                b"MSHR" => {
                    if s.u64()? != 0 {
                        return Err(CkptError::NonQuiescent);
                    }
                }
                _ => unreachable!("tag list is fixed"),
            }
            if s.pos != payload.len() {
                return Err(CkptError::Malformed(format!(
                    "section {:?} has {} unconsumed byte(s)",
                    String::from_utf8_lossy(&tag),
                    payload.len() - s.pos
                )));
            }
            debug_assert_eq!(cur.pos, start + len);
        }

        if cur.pos != body_end {
            return Err(CkptError::LengthMismatch {
                header: total,
                actual: (cur.pos + 8) as u64,
            });
        }
        Ok(snap)
    }

    /// Checks the snapshot belongs to `(bench, fingerprint)`.
    pub fn verify_identity(&self, bench: &str, fingerprint: &str) -> Result<(), CkptError> {
        if self.bench != bench {
            return Err(CkptError::BenchMismatch {
                expected: bench.to_owned(),
                found: self.bench.clone(),
            });
        }
        if self.fingerprint != fingerprint {
            return Err(CkptError::FingerprintMismatch {
                expected: fingerprint.to_owned(),
                found: self.fingerprint.clone(),
            });
        }
        Ok(())
    }
}

// ---- decoding cursor -----------------------------------------------------

struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CkptError::Malformed("length overflow".to_owned()))?;
        if end > self.b.len() {
            return Err(CkptError::Truncated { at: self.b.len() });
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        // hbat-lint: allow(panic-reach) take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        // hbat-lint: allow(panic-reach) take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a leading u64 element count and validates it against the
    /// *exact* remaining payload (`count * elem_size` bytes must follow),
    /// so a hostile count can never drive allocation past the data that
    /// actually exists.
    fn count(&mut self, elem_size: usize) -> Result<usize, CkptError> {
        let declared = self.u64()?;
        let remaining = self.b.len() - self.pos;
        let need = (declared as u128) * (elem_size as u128);
        if need != remaining as u128 {
            return Err(CkptError::Malformed(format!(
                "element count {declared} x {elem_size} B != {remaining} B remaining"
            )));
        }
        Ok(declared as usize)
    }

    fn ident(&mut self, what: &str) -> Result<String, CkptError> {
        let len = self.u32()? as usize;
        if len > MAX_IDENT {
            return Err(CkptError::Malformed(format!(
                "{what} length {len} > {MAX_IDENT}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Malformed(format!("{what} is not UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Snapshot {
        Snapshot {
            bench: "Compress".to_owned(),
            fingerprint: "a1b2c3d4e5f60718".to_owned(),
            index: 10_000,
            arch: ArchState {
                iregs: std::array::from_fn(|i| i as i64 * -3),
                freg_bits: std::array::from_fn(|i| (i as u64) << 40 | 0x7ff8_0000_0000_0001),
                pc: 42,
                serial: 10_000,
                halted: false,
            },
            mem_chunks: vec![
                (0x1000, vec![0xAB; Memory::chunk_bytes()]),
                (
                    0x5000,
                    (0..Memory::chunk_bytes()).map(|i| i as u8).collect(),
                ),
            ],
            warm: WarmExport {
                pages: vec![1, 5, 2],
                tlb: vec![(5, 10), (1, 11), (2, 12)],
                dblocks: vec![(0x1000, 3), (0x5020, 13)],
                iblocks: vec![(0, 0), (64, 7)],
                stamp: 14,
                ghr: 0xA5,
                pht: vec![2; 4096],
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        back.verify_identity("Compress", "a1b2c3d4e5f60718")
            .unwrap();
        assert!(matches!(
            back.verify_identity("Gcc", "a1b2c3d4e5f60718"),
            Err(CkptError::BenchMismatch { .. })
        ));
        assert!(matches!(
            back.verify_identity("Compress", "ffff"),
            Err(CkptError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot {
            bench: String::new(),
            fingerprint: String::new(),
            index: 0,
            arch: ArchState {
                iregs: [0; 32],
                freg_bits: [0; 32],
                pc: 0,
                serial: 0,
                halted: true,
            },
            mem_chunks: Vec::new(),
            warm: WarmExport::default(),
        };
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(Snapshot::decode(&bytes), Err(CkptError::BadMagic)));

        let mut bytes = sample().encode();
        bytes[8] = 9; // version field
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn version_patch_with_valid_checksum_is_still_rejected() {
        // A checksum-valid file with a future version must fail the
        // version check, not the checksum check: prove the version gate
        // is independent of integrity.
        let mut bytes = sample().encode();
        bytes[8] = 2;
        let body_end = bytes.len() - 8;
        let sum = checksum_of(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let bytes = sample().encode();
        // Walk a spread of offsets (every byte would be slow): each flip
        // must produce an error, never a panic, never a silent success.
        for i in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            for bit in [0, 3, 7] {
                let mut c = bytes.clone();
                c[i] ^= 1 << bit;
                assert!(
                    Snapshot::decode(&c).is_err(),
                    "flip at byte {i} bit {bit} must be detected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed() {
        let bytes = sample().encode();
        for cut in [0, 7, 19, 20, 100, bytes.len() - 1] {
            assert!(
                matches!(
                    Snapshot::decode(&bytes[..cut]),
                    Err(CkptError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Snapshot::decode(&extended),
            Err(CkptError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn nonquiescent_mshr_is_rejected() {
        // Craft a snapshot whose MSHR count is nonzero, checksum valid.
        let bytes = sample().encode();
        let mshr_payload_at = bytes.len() - 8 - 8; // count sits just before the trailer
        let mut c = bytes.clone();
        c[mshr_payload_at] = 3;
        let body_end = c.len() - 8;
        let sum = checksum_of(&c[..body_end]);
        c[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(Snapshot::decode(&c), Err(CkptError::NonQuiescent)));
    }

    #[test]
    fn hostile_counts_cannot_drive_allocation() {
        // A huge WPGS count with no data behind it must error on the
        // count check (Malformed), never allocate terabytes.
        let snap = sample();
        let mut bytes = snap.encode();
        // Find the WPGS tag and sabotage its count.
        let pos = bytes
            .windows(4)
            .position(|w| w == b"WPGS")
            .expect("WPGS present");
        let count_at = pos + 4 + 8; // tag + section len
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_end = bytes.len() - 8;
        let sum = checksum_of(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::Malformed(_))
        ));
    }

    #[test]
    fn errors_display_distinctly() {
        let msgs = [
            CkptError::BadMagic.to_string(),
            CkptError::UnsupportedVersion(7).to_string(),
            CkptError::Truncated { at: 3 }.to_string(),
            CkptError::LengthMismatch {
                header: 1,
                actual: 2,
            }
            .to_string(),
            CkptError::TrailingBytes { extra: 4 }.to_string(),
            CkptError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            }
            .to_string(),
            CkptError::Malformed("x".into()).to_string(),
            CkptError::FingerprintMismatch {
                expected: "a".into(),
                found: "b".into(),
            }
            .to_string(),
            CkptError::BenchMismatch {
                expected: "a".into(),
                found: "b".into(),
            }
            .to_string(),
            CkptError::NonQuiescent.to_string(),
            CkptError::Cancelled.to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in &msgs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
