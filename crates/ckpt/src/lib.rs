//! # hbat-ckpt — crash-safe checkpoint/restore for long simulations
//!
//! Long sweep campaigns fast-forward hundreds of millions of functional
//! instructions before the detailed timing window even starts; a crash
//! near the end used to mean starting over. This crate snapshots the
//! complete resumable state of a fast-forward run — the functional
//! [`Machine`](hbat_isa::Machine)'s architectural registers and memory,
//! plus the exact warm-state accumulator (`hbat_cpu::WarmAccumulator`)
//! that distils TLB/cache/branch-predictor locality for the timing
//! engine — into a versioned, checksummed, dependency-free binary format
//! ([`format::Snapshot`]) published atomically ([`atomic`]) and
//! content-addressed by `(benchmark, config fingerprint, instruction
//! index)` ([`store::CheckpointStore`]).
//!
//! The integrity model is belt and braces: a length-prefixed header that
//! rejects truncation and trailing bytes, an FNV-1a-64 trailer that
//! rejects any flipped bit, and identity fields that reject snapshots
//! from a different benchmark or configuration. Every rejection is a
//! typed [`format::CkptError`]; restore falls back to the previous
//! checkpoint or a cold start, never to silently wrong state.

pub mod atomic;
pub mod events;
pub mod ff;
pub mod format;
pub mod store;

pub use atomic::write_atomic_bytes;
pub use ff::{fast_forward, FastForward};
pub use format::{CkptError, Snapshot, CKPT_VERSION};
pub use store::CheckpointStore;
