//! Content-addressed snapshot storage.
//!
//! Snapshots live in one directory, named
//! `{bench}-{fingerprint}-{index:012}.ckpt` — the same
//! `(benchmark, config fingerprint, instruction index)` addressing the
//! sweep journal uses for cells, so a retry knows exactly which
//! snapshots it may trust. [`CheckpointStore::save`] publishes through
//! the durable atomic writer; [`CheckpointStore::latest_valid`] scans
//! newest-first, decodes and identity-checks each candidate, and falls
//! back past corrupt files (collecting their typed errors) rather than
//! ever returning questionable state.

use std::path::{Path, PathBuf};

use crate::atomic::write_atomic_bytes;
use crate::events;
use crate::format::{CkptError, Snapshot};

/// One benchmark+configuration's snapshot directory view.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    bench: String,
    fingerprint: String,
}

/// Outcome of a [`CheckpointStore::latest_valid`] scan.
#[derive(Debug)]
pub struct RestoreScan {
    /// The newest snapshot that decoded and identity-checked cleanly.
    pub snapshot: Option<Snapshot>,
    /// Candidates that were rejected, newest first, with why.
    pub rejected: Vec<(PathBuf, CkptError)>,
}

impl CheckpointStore {
    /// A store view for `(bench, fingerprint)` under `dir`.
    pub fn new(dir: &Path, bench: &str, fingerprint: &str) -> CheckpointStore {
        CheckpointStore {
            dir: dir.to_path_buf(),
            bench: bench.to_owned(),
            fingerprint: fingerprint.to_owned(),
        }
    }

    /// The file a snapshot at `index` is stored at.
    pub fn path_for(&self, index: u64) -> PathBuf {
        self.dir.join(format!(
            "{}-{}-{index:012}.ckpt",
            self.bench, self.fingerprint
        ))
    }

    /// Encodes and durably publishes `snap`, returning its path.
    ///
    /// # Panics
    ///
    /// Panics if `snap`'s identity differs from the store's — snapshots
    /// are only ever saved by the run that produced them.
    pub fn save(&self, snap: &Snapshot) -> Result<PathBuf, CkptError> {
        assert_eq!(snap.bench, self.bench, "snapshot/store bench mismatch");
        assert_eq!(
            snap.fingerprint, self.fingerprint,
            "snapshot/store fingerprint mismatch"
        );
        let path = self.path_for(snap.index);
        write_atomic_bytes(&path, &snap.encode())?;
        events::note_written();
        Ok(path)
    }

    /// Indices of this identity's snapshots present on disk, ascending.
    /// Files for other identities (or with unparsable names) are ignored.
    pub fn indices(&self) -> Result<Vec<u64>, CkptError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(CkptError::Io(e)),
        };
        let prefix = format!("{}-{}-", self.bench, self.fingerprint);
        for entry in entries {
            let name = entry.map_err(CkptError::Io)?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name
                .strip_prefix(&prefix)
                .and_then(|r| r.strip_suffix(".ckpt"))
            {
                if let Ok(idx) = rest.parse::<u64>() {
                    out.push(idx);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Finds the newest snapshot at or below `max_index` that decodes and
    /// identity-checks cleanly, skipping (and reporting) corrupt ones.
    /// Bumps the restored/rejected event counters as it goes. Only disk
    /// scanning errors are returned as `Err`; "nothing usable" is
    /// `Ok` with `snapshot: None` — the caller cold-starts.
    pub fn latest_valid(&self, max_index: u64) -> Result<RestoreScan, CkptError> {
        let mut scan = RestoreScan {
            snapshot: None,
            rejected: Vec::new(),
        };
        let mut indices = self.indices()?;
        indices.retain(|&i| i <= max_index);
        for idx in indices.into_iter().rev() {
            let path = self.path_for(idx);
            let verdict = std::fs::read(&path)
                .map_err(CkptError::Io)
                .and_then(|bytes| Snapshot::decode(&bytes))
                .and_then(|snap| {
                    snap.verify_identity(&self.bench, &self.fingerprint)?;
                    if snap.index != idx {
                        return Err(CkptError::Malformed(format!(
                            "file named for index {idx} contains index {}",
                            snap.index
                        )));
                    }
                    Ok(snap)
                });
            match verdict {
                Ok(snap) => {
                    events::note_restored();
                    scan.snapshot = Some(snap);
                    break;
                }
                Err(e) => {
                    events::note_rejected();
                    scan.rejected.push((path, e));
                }
            }
        }
        Ok(scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::checksum_of;
    use hbat_cpu::WarmExport;
    use hbat_isa::executor::ArchState;

    fn snap(bench: &str, fp: &str, index: u64) -> Snapshot {
        Snapshot {
            bench: bench.to_owned(),
            fingerprint: fp.to_owned(),
            index,
            arch: ArchState {
                iregs: [index as i64; 32],
                freg_bits: [0; 32],
                pc: 1,
                serial: index,
                halted: false,
            },
            mem_chunks: Vec::new(),
            warm: WarmExport::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hbat-ckpt-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn save_then_latest_valid_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir, "Compress", "deadbeef");
        for idx in [100u64, 200, 300] {
            store.save(&snap("Compress", "deadbeef", idx)).unwrap();
        }
        assert_eq!(store.indices().unwrap(), vec![100, 200, 300]);

        let scan = store.latest_valid(u64::MAX).unwrap();
        assert_eq!(scan.snapshot.unwrap().index, 300);
        assert!(scan.rejected.is_empty());

        // A ceiling excludes newer snapshots.
        let scan = store.latest_valid(250).unwrap();
        assert_eq!(scan.snapshot.unwrap().index, 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_directory_cold_starts() {
        let dir = tmpdir("missing");
        let store = CheckpointStore::new(&dir, "Gcc", "00");
        let scan = store.latest_valid(u64::MAX).unwrap();
        assert!(scan.snapshot.is_none());
        assert!(scan.rejected.is_empty());
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::new(&dir, "Compress", "deadbeef");
        store.save(&snap("Compress", "deadbeef", 100)).unwrap();
        store.save(&snap("Compress", "deadbeef", 200)).unwrap();

        // Flip one bit in the newest snapshot.
        let newest = store.path_for(200);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&newest, &bytes).unwrap();

        let rejected_before = crate::events::rejected();
        let scan = store.latest_valid(u64::MAX).unwrap();
        assert_eq!(
            scan.snapshot.unwrap().index,
            100,
            "fell back past corruption"
        );
        assert_eq!(scan.rejected.len(), 1);
        assert!(matches!(
            scan.rejected[0].1,
            CkptError::ChecksumMismatch { .. }
        ));
        assert!(crate::events::rejected() > rejected_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_identity_snapshots_are_invisible() {
        let dir = tmpdir("foreign");
        let ours = CheckpointStore::new(&dir, "Compress", "aaaa");
        let theirs = CheckpointStore::new(&dir, "Compress", "bbbb");
        theirs.save(&snap("Compress", "bbbb", 500)).unwrap();
        let scan = ours.latest_valid(u64::MAX).unwrap();
        assert!(
            scan.snapshot.is_none(),
            "different fingerprint never restored"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lying_contents_with_valid_checksum_are_rejected() {
        // A file *named* for our identity whose contents (checksum-valid)
        // carry a different fingerprint: the identity check must fire.
        let dir = tmpdir("lying");
        let store = CheckpointStore::new(&dir, "Compress", "aaaa");
        let alien = snap("Compress", "bbbb", 700);
        write_atomic_bytes(&store.path_for(700), &alien.encode()).unwrap();
        let scan = store.latest_valid(u64::MAX).unwrap();
        assert!(scan.snapshot.is_none());
        assert_eq!(scan.rejected.len(), 1);
        assert!(matches!(
            scan.rejected[0].1,
            CkptError::FingerprintMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_mismatch_between_name_and_contents_is_rejected() {
        let dir = tmpdir("renamed");
        let store = CheckpointStore::new(&dir, "Compress", "aaaa");
        // Contents say index 100, file name says 900.
        let s = snap("Compress", "aaaa", 100);
        write_atomic_bytes(&store.path_for(900), &s.encode()).unwrap();
        let scan = store.latest_valid(u64::MAX).unwrap();
        assert!(scan.snapshot.is_none());
        assert!(matches!(scan.rejected[0].1, CkptError::Malformed(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_refuses_foreign_snapshots() {
        let dir = tmpdir("refuse");
        let store = CheckpointStore::new(&dir, "Compress", "aaaa");
        let alien = snap("Gcc", "aaaa", 1);
        assert!(std::panic::catch_unwind(|| store.save(&alien)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_helper_matches_decoder() {
        let bytes = snap("A", "b", 1).encode();
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
        assert_eq!(stored, checksum_of(&bytes[..body_end]));
    }
}
