//! Fast-forward functional mode: Machine-only stepping, no timing engine.
//!
//! [`fast_forward`] advances a functional [`Machine`] to a target
//! committed-instruction index while streaming every committed
//! instruction through a [`WarmAccumulator`], invoking a checkpoint hook
//! at every interval multiple and once at the end (the boundary, or the
//! halt point if the program ends early). Stepping costs only the
//! functional executor — no per-cycle timing — which is what makes
//! resuming a crashed multi-hour sweep cheap.

use std::sync::atomic::{AtomicBool, Ordering};

use hbat_cpu::WarmAccumulator;
use hbat_isa::Machine;

use crate::format::CkptError;

/// How a fast-forward run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastForward {
    /// Committed-instruction index reached (== target unless the program
    /// halted first).
    pub index: u64,
    /// Whether the machine halted before (or exactly at) the target.
    pub halted: bool,
}

/// Steps `machine` from committed-instruction index `from` to `target`,
/// feeding each committed instruction to `acc`.
///
/// `emit(machine, acc, index)` is called at every multiple of `interval`
/// strictly below the end, and once at the end itself — so the final
/// snapshot always sits exactly at the boundary (or the halt point), and
/// a crash between intervals loses at most `interval` instructions of
/// fast-forward work. `cancel`, when set, aborts with
/// [`CkptError::Cancelled`] (checked between instructions).
///
/// # Panics
///
/// Panics if `interval == 0` or `from > target` — caller bugs, not input
/// conditions.
pub fn fast_forward(
    machine: &mut Machine,
    acc: &mut WarmAccumulator,
    from: u64,
    target: u64,
    interval: u64,
    cancel: Option<&AtomicBool>,
    mut emit: impl FnMut(&Machine, &WarmAccumulator, u64) -> Result<(), CkptError>,
) -> Result<FastForward, CkptError> {
    assert!(interval > 0, "checkpoint interval must be positive");
    assert!(from <= target, "cannot fast-forward backwards");
    debug_assert_eq!(
        machine.instructions_retired(),
        from,
        "machine position must match the claimed starting index"
    );

    let mut i = from;
    while i < target && !machine.is_halted() {
        if let Some(c) = cancel {
            if i.is_multiple_of(1024) && c.load(Ordering::Relaxed) {
                return Err(CkptError::Cancelled);
            }
        }
        match machine.step() {
            Some(t) => {
                acc.note(&t);
                i += 1;
                if i.is_multiple_of(interval) && i < target {
                    emit(machine, acc, i)?;
                }
            }
            None => break, // halted: the Halt step retires nothing
        }
    }
    emit(machine, acc, i)?;
    Ok(FastForward {
        index: i,
        halted: machine.is_halted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbat_core::addr::PageGeometry;
    use hbat_cpu::SimConfig;
    use hbat_isa::inst::{AddrMode, AluOp, Cond, Operand, Width};
    use hbat_isa::{Inst, Program, Reg};

    /// A little counted loop with a load per iteration: 1 + 4*n + 1
    /// committed instructions for n iterations.
    fn loop_program(iters: i64) -> Machine {
        let program = Program::new(vec![
            Inst::Li {
                d: Reg::int(1),
                imm: iters,
            },
            Inst::Load {
                d: Reg::int(2),
                addr: AddrMode::BaseOffset {
                    base: Reg::int(1),
                    offset: 0x1000,
                },
                width: Width::B8,
            },
            Inst::Alu {
                op: AluOp::Add,
                d: Reg::int(1),
                a: Reg::int(1),
                b: Operand::Imm(-1),
            },
            Inst::Nop,
            Inst::Branch {
                cond: Cond::Gt,
                a: Reg::int(1),
                b: Reg::int(0),
                target: 1,
            },
            Inst::Halt,
        ])
        .unwrap();
        Machine::new(program)
    }

    fn acc() -> WarmAccumulator {
        WarmAccumulator::new(&SimConfig::baseline(), PageGeometry::KB4)
    }

    #[test]
    fn emits_at_intervals_and_at_the_boundary() {
        let mut m = loop_program(100);
        let mut a = acc();
        let mut emitted = Vec::new();
        let out = fast_forward(&mut m, &mut a, 0, 250, 100, None, |_, _, i| {
            emitted.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(out.index, 250);
        assert!(!out.halted);
        assert_eq!(emitted, vec![100, 200, 250]);
        assert_eq!(m.instructions_retired(), 250);
    }

    #[test]
    fn boundary_on_an_interval_multiple_emits_once() {
        let mut m = loop_program(100);
        let mut a = acc();
        let mut emitted = Vec::new();
        fast_forward(&mut m, &mut a, 0, 200, 100, None, |_, _, i| {
            emitted.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(emitted, vec![100, 200]);
    }

    #[test]
    fn early_halt_emits_the_halt_point() {
        let mut m = loop_program(3); // 1 + 4*3 committed (Halt retires nothing)
        let mut a = acc();
        let mut emitted = Vec::new();
        let out = fast_forward(&mut m, &mut a, 0, 10_000, 100, None, |_, _, i| {
            emitted.push(i);
            Ok(())
        })
        .unwrap();
        assert!(out.halted);
        assert_eq!(out.index, 13);
        assert_eq!(emitted, vec![13]);
    }

    #[test]
    fn resume_from_midpoint_matches_straight_run() {
        // Straight run to 300.
        let mut m1 = loop_program(1000);
        let mut a1 = acc();
        fast_forward(&mut m1, &mut a1, 0, 300, 1000, None, |_, _, _| Ok(())).unwrap();

        // Run to 120, clone state (standing in for snapshot restore),
        // resume to 300.
        let mut m2 = loop_program(1000);
        let mut a2 = acc();
        fast_forward(&mut m2, &mut a2, 0, 120, 1000, None, |_, _, _| Ok(())).unwrap();
        let mut m3 = loop_program(1000);
        m3.restore_arch_state(&m2.arch_state()).unwrap();
        *m3.memory_mut() = m2.memory().clone();
        let mut a3 =
            WarmAccumulator::import(&SimConfig::baseline(), PageGeometry::KB4, &a2.export());
        fast_forward(&mut m3, &mut a3, 120, 300, 1000, None, |_, _, _| Ok(())).unwrap();

        assert_eq!(m1.arch_state(), m3.arch_state());
        assert_eq!(a1.export(), a3.export());
        assert_eq!(a1.warm_state(), a3.warm_state());
    }

    #[test]
    fn cancellation_aborts_with_typed_error() {
        let mut m = loop_program(10_000);
        let mut a = acc();
        let cancel = AtomicBool::new(true);
        let r = fast_forward(
            &mut m,
            &mut a,
            0,
            40_000,
            1_000,
            Some(&cancel),
            |_, _, _| Ok(()),
        );
        assert!(matches!(r, Err(CkptError::Cancelled)));
    }

    #[test]
    fn emit_errors_propagate() {
        let mut m = loop_program(100);
        let mut a = acc();
        let r = fast_forward(&mut m, &mut a, 0, 250, 100, None, |_, _, _| {
            Err(CkptError::NonQuiescent)
        });
        assert!(matches!(r, Err(CkptError::NonQuiescent)));
    }
}
