//! Durable atomic file publication: temp file + fsync + rename + parent
//! directory fsync.
//!
//! The sweep journal's `write_atomic` already made publication *atomic*
//! (readers see the old or the new file, never a torn one) and made the
//! *contents* durable (`sync_all` on the temp file before the rename),
//! but the rename itself lived only in the directory's page cache: a
//! power cut after the rename could roll the directory entry back. This
//! module closes that gap by fsyncing the parent directory after the
//! rename, and exposes test-visible counters so a unit test can prove
//! both syncs actually happen on the write path.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// `sync_all` calls issued on temp files (test seam).
static FILE_SYNCS: AtomicU64 = AtomicU64::new(0);
/// `sync_all` calls issued on parent directories (test seam).
static DIR_SYNCS: AtomicU64 = AtomicU64::new(0);

/// Temp-file fsyncs since process start.
pub fn file_syncs() -> u64 {
    FILE_SYNCS.load(Ordering::Relaxed)
}

/// Parent-directory fsyncs since process start.
pub fn dir_syncs() -> u64 {
    DIR_SYNCS.load(Ordering::Relaxed)
}

/// Writes `contents` to `path` atomically *and durably*: the bytes are
/// fsynced into a unique temp file in the target directory, a `rename`
/// publishes them, and the parent directory is fsynced so the rename
/// itself survives a power cut. Concurrent readers (and a kill at any
/// instant) observe either the old complete file or the new complete
/// file, never a torn prefix.
pub fn write_atomic_bytes(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            std::fs::create_dir_all(d)?;
            d.to_path_buf()
        }
        _ => PathBuf::from("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{base}.tmp{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        FILE_SYNCS.fetch_add(1, Ordering::Relaxed);
        std::fs::rename(&tmp, path)?;
        // Durability of the rename itself: fsync the directory so the
        // new entry is on stable storage. Platforms whose directory
        // handles refuse fsync (not Linux) surface the error rather than
        // silently skipping the guarantee.
        File::open(&dir)?.sync_all()?;
        DIR_SYNCS.fetch_add(1, Ordering::Relaxed);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_whole_files_and_syncs_file_and_directory() {
        let dir = std::env::temp_dir().join(format!("hbat-ckpt-atomic-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("snap.ckpt");

        let (f0, d0) = (file_syncs(), dir_syncs());
        write_atomic_bytes(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // Both the contents and the rename were forced to stable storage.
        assert!(file_syncs() > f0, "temp file must be fsynced");
        assert!(dir_syncs() > d0, "parent directory must be fsynced");

        write_atomic_bytes(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");

        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_pathless_targets() {
        assert!(write_atomic_bytes(Path::new("/"), b"x").is_err());
    }
}
