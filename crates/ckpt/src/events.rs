//! Process-global checkpoint event counters.
//!
//! The sweep heartbeat reports checkpoint activity without threading a
//! handle through every worker: the store bumps these on each snapshot
//! written, restored, or rejected, and the reporter thread reads them.
//! Counters only ever increase; readers interested in a window take
//! deltas.

use std::sync::atomic::{AtomicU64, Ordering};

static WRITTEN: AtomicU64 = AtomicU64::new(0);
static RESTORED: AtomicU64 = AtomicU64::new(0);
static REJECTED: AtomicU64 = AtomicU64::new(0);

/// Notes one snapshot durably written.
pub fn note_written() {
    WRITTEN.fetch_add(1, Ordering::Relaxed);
}

/// Notes one snapshot successfully restored.
pub fn note_restored() {
    RESTORED.fetch_add(1, Ordering::Relaxed);
}

/// Notes one snapshot rejected by integrity or identity checks.
pub fn note_rejected() {
    REJECTED.fetch_add(1, Ordering::Relaxed);
}

/// Snapshots written since process start.
pub fn written() -> u64 {
    WRITTEN.load(Ordering::Relaxed)
}

/// Snapshots restored since process start.
pub fn restored() -> u64 {
    RESTORED.load(Ordering::Relaxed)
}

/// Snapshots rejected since process start.
pub fn rejected() -> u64 {
    REJECTED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let (w, r, x) = (written(), restored(), rejected());
        note_written();
        note_restored();
        note_rejected();
        // Other test threads may bump these too: assert deltas as lower
        // bounds, never exact values.
        assert!(written() > w);
        assert!(restored() > r);
        assert!(rejected() > x);
    }
}
