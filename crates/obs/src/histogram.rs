//! Bounded-bucket occupancy histograms.
//!
//! A [`Histogram`] has a fixed bucket count chosen at construction; all
//! later updates are branch-plus-increment, with values past the last
//! bucket saturating into it. That keeps the recording path
//! allocation-free (the only allocation is the bucket vector in
//! [`Histogram::new`]), which hot-loop callers require.

/// A fixed-width histogram of small non-negative integers (queue
/// occupancies). Bucket `i` counts observations of exactly `i`, except
/// the last bucket, which also absorbs everything larger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
    max_seen: u32,
}

impl Histogram {
    /// A histogram covering occupancies `0..=cap`, with values above
    /// `cap` saturating into the last bucket.
    ///
    /// # Panics
    /// Panics if `cap` is so large the bucket vector cannot be sized
    /// (`cap + 1` overflows `usize`); queue capacities are tiny in
    /// practice.
    pub fn new(cap: u32) -> Self {
        Histogram {
            buckets: vec![0; cap as usize + 1],
            total: 0,
            max_seen: 0,
        }
    }

    // hbat-lint: hot
    /// Record one observation of occupancy `value`.
    #[inline]
    pub fn record(&mut self, value: u32) {
        let last = self.buckets.len() - 1;
        let idx = (value as usize).min(last);
        // hbat-lint: allow(panic) buckets is non-empty by construction (cap + 1) and idx is clamped to it
        self.buckets[idx] += 1;
        self.total += 1;
        if value > self.max_seen {
            self.max_seen = value;
        }
    }
    // hbat-lint: cold

    /// Number of buckets (the constructor's `cap + 1`).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest raw value observed (even if it saturated).
    pub fn max_seen(&self) -> u32 {
        self.max_seen
    }

    /// Count in bucket `i`, or 0 out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// The bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Mean observed occupancy, computed from the buckets (saturated
    /// observations count at the last bucket's value). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c as f64)
            .sum();
        weighted / self.total as f64
    }

    /// Smallest occupancy `v` such that at least `q` (in `0.0..=1.0`)
    /// of observations are `<= v`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u32 {
        if self.total == 0 {
            return 0;
        }
        let need = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= need {
                return i as u32;
            }
        }
        (self.buckets.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_saturates() {
        let mut h = Histogram::new(4);
        assert_eq!(h.len(), 5);
        assert!(h.is_empty());
        for v in [0, 1, 1, 4, 9, 200] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(4), 3, "4, 9 and 200 all land in the last bucket");
        assert_eq!(h.max_seen(), 200);
        assert_eq!(h.count(17), 0);
    }

    #[test]
    fn mean_and_quantile() {
        let mut h = Histogram::new(8);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        for v in [2, 2, 4, 8] {
            h.record(v);
        }
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 8);
        assert_eq!(h.quantile(0.0), 2, "ceil keeps q=0 at the first datum");
    }

    #[test]
    fn zero_capacity_is_a_single_saturating_bucket() {
        let mut h = Histogram::new(0);
        h.record(0);
        h.record(7);
        assert_eq!(h.len(), 1);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.quantile(0.9), 0);
    }
}
