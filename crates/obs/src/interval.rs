//! Interval time-series telemetry: the probe stream bucketed into
//! fixed-width cycle windows.
//!
//! Whole-run aggregates (the paper's Tables 2–3, [`TraceRecorder`]'s
//! totals) answer *how much*; the [`IntervalRecorder`] answers *when*.
//! It slices a run into windows of `width` cycles and emits one
//! [`IntervalRecord`] per window — IPC, TLB and D-cache hit rates, the
//! full 8-cause stall mix, and ROB/LSQ occupancy means — preserving the
//! engine's attribution invariant `issue + Σstalls == cycles` inside
//! every window. This is the substrate ROADMAP item 2's SMARTS-style
//! sampled windows build on: per-window statistics are exactly what a
//! confidence interval needs.
//!
//! Windows are anchored at the first observed cycle (cycle numbering
//! may start at 0 or 1 depending on the engine), the window buffer is
//! pre-allocated and never reallocates (overflow is counted, not
//! grown), and — like every recorder — attaching one never changes the
//! simulation.
//!
//! [`TraceRecorder`]: crate::TraceRecorder

use crate::recorder::{OccupancySample, Recorder, StallCause};

/// Schema version stamped as the first key (`"v"`) of every interval
/// JSONL record. Bump on any key change.
pub const INTERVAL_SCHEMA_VERSION: u32 = 1;

/// Default capacity of the completed-window buffer (windows beyond it
/// are counted in [`IntervalRecorder::dropped_windows`], not stored).
pub const DEFAULT_WINDOW_CAPACITY: usize = 1 << 16;

/// Default occupancy sampling cadence, matching [`TraceRecorder`]'s so
/// a [`Tee`](crate::Tee) of the two keeps one shared cadence.
///
/// [`TraceRecorder`]: crate::TraceRecorder
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

/// One completed window of `width` cycles (the final window of a run
/// may be shorter; [`cycles`](IntervalRecord::cycles) says how many
/// cycles it actually covered).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalRecord {
    /// First cycle of the window.
    pub start: u64,
    /// Cycles observed in the window (== window width except for the
    /// trailing partial window).
    pub cycles: u64,
    /// Cycles in which at least one operation issued.
    pub issue_cycles: u64,
    /// Operations issued.
    pub issued: u64,
    /// Operations committed (retired).
    pub committed: u64,
    /// Stall cycles per [`StallCause`], indexed by
    /// [`StallCause::index`]. `issue_cycles + Σ stalls == cycles`.
    pub stalls: [u64; StallCause::COUNT],
    /// Translations served (TLB hits + misses; port rejects excluded).
    pub tlb_lookups: u64,
    /// Translations that missed.
    pub tlb_misses: u64,
    /// Data-cache accesses served.
    pub dcache_accesses: u64,
    /// Data-cache accesses that missed.
    pub dcache_misses: u64,
    /// Page-table walks started.
    pub walks: u64,
    /// Total latency of the walks started this window.
    pub walk_cycles: u64,
    /// Sum of sampled ROB occupancies.
    pub rob_sum: u64,
    /// Sum of sampled LSQ occupancies.
    pub lsq_sum: u64,
    /// Occupancy samples taken.
    pub samples: u64,
}

impl IntervalRecord {
    /// Committed instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        ratio(self.committed, self.cycles)
    }

    /// Issued operations per cycle (includes wrong-path work).
    pub fn issue_ipc(&self) -> f64 {
        ratio(self.issued, self.cycles)
    }

    /// TLB hit rate; `None` when the window saw no lookups.
    pub fn tlb_hit_rate(&self) -> Option<f64> {
        fraction(
            self.tlb_lookups - self.tlb_misses.min(self.tlb_lookups),
            self.tlb_lookups,
        )
    }

    /// D-cache hit rate; `None` when the window saw no accesses.
    pub fn dcache_hit_rate(&self) -> Option<f64> {
        fraction(
            self.dcache_accesses - self.dcache_misses.min(self.dcache_accesses),
            self.dcache_accesses,
        )
    }

    /// Mean sampled ROB occupancy; `None` when no sample landed in the
    /// window.
    pub fn rob_mean(&self) -> Option<f64> {
        fraction(self.rob_sum, self.samples)
    }

    /// Mean sampled LSQ occupancy; `None` when no sample landed.
    pub fn lsq_mean(&self) -> Option<f64> {
        fraction(self.lsq_sum, self.samples)
    }

    /// Total stall cycles across all causes.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// The window's fields as JSON object members (no braces, no
    /// version key), for embedding in a larger record — the sweep
    /// interval sidecar nests these under its own identity keys.
    pub fn render_fields(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "\"start\":{},\"cycles\":{},\"issue\":{},\"issued\":{},\"committed\":{}",
            self.start, self.cycles, self.issue_cycles, self.issued, self.committed
        );
        s.push_str(",\"stalls\":{");
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            // hbat-lint: allow(panic) index() < COUNT by construction; the array is [_; COUNT]
            let _ = write!(s, "\"{}\":{}", cause.name(), self.stalls[cause.index()]);
        }
        let _ = write!(
            s,
            "}},\"tlb\":{{\"lookups\":{},\"misses\":{}}}",
            self.tlb_lookups, self.tlb_misses
        );
        let _ = write!(
            s,
            ",\"dcache\":{{\"accesses\":{},\"misses\":{}}}",
            self.dcache_accesses, self.dcache_misses
        );
        let _ = write!(
            s,
            ",\"walks\":{{\"count\":{},\"cycles\":{}}}",
            self.walks, self.walk_cycles
        );
        let _ = write!(
            s,
            ",\"occupancy\":{{\"rob_sum\":{},\"lsq_sum\":{},\"samples\":{}}}",
            self.rob_sum, self.lsq_sum, self.samples
        );
        s
    }

    /// One JSON object on one line, `"v"` first.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"v\":{},{}}}",
            INTERVAL_SCHEMA_VERSION,
            self.render_fields()
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn fraction(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

/// Buckets the probe stream into fixed-width cycle windows.
///
/// Windows are half-open `[start, start + width)` ranges anchored at
/// the first cycle any probe reports, so window 0 is always full-width
/// regardless of where the engine starts counting. The completed-window
/// buffer is allocated once up front; if a run outlasts it, further
/// windows are dropped and counted, never reallocated (the probe path
/// stays allocation-free, same policy as [`TraceRecorder`]'s event
/// buffer).
///
/// Call [`finish`](IntervalRecorder::finish) after the run to flush the
/// trailing partial window (idempotent; windows shorter than `width`
/// report their true [`cycles`](IntervalRecord::cycles)).
///
/// [`TraceRecorder`]: crate::TraceRecorder
#[derive(Debug)]
pub struct IntervalRecorder {
    width: u64,
    /// Start cycle of the window being accumulated; `None` until the
    /// first probe anchors the timeline.
    win_start: Option<u64>,
    cur: IntervalRecord,
    windows: Vec<IntervalRecord>,
    dropped: u64,
    sample_interval: u64,
}

impl IntervalRecorder {
    /// A recorder with `width`-cycle windows and the default buffer
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`: width 0 defines no window at all and
    /// width 1 makes every per-window rate a 0/1 step function — both
    /// are rejected rather than silently producing noise. The CLI
    /// validates `--intervals` before construction.
    pub fn new(width: u64) -> Self {
        Self::with_capacity(width, DEFAULT_WINDOW_CAPACITY)
    }

    /// Like [`new`](IntervalRecorder::new) with an explicit buffer
    /// capacity (in windows).
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` (see [`new`](IntervalRecorder::new)).
    pub fn with_capacity(width: u64, capacity: usize) -> Self {
        assert!(
            width >= 2,
            "interval width must be >= 2 cycles, got {width}"
        );
        IntervalRecorder {
            width,
            win_start: None,
            cur: IntervalRecord::default(),
            windows: Vec::with_capacity(capacity),
            dropped: 0,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
        }
    }

    /// Window width in cycles.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Completed windows, in time order. Trailing activity is only
    /// visible after [`finish`](IntervalRecorder::finish).
    pub fn windows(&self) -> &[IntervalRecord] {
        &self.windows
    }

    /// Windows dropped after the buffer filled.
    pub fn dropped_windows(&self) -> u64 {
        self.dropped
    }

    /// Flushes the in-progress window if it observed anything. Call
    /// once after the run; safe to call again (the flushed accumulator
    /// is empty, so a second call is a no-op).
    pub fn finish(&mut self) {
        if let Some(start) = self.win_start {
            let untouched = IntervalRecord {
                start,
                ..IntervalRecord::default()
            };
            if self.cur != untouched {
                self.push_window();
            }
        }
    }

    // hbat-lint: hot
    /// Advances the window clock to `now`, flushing every window whose
    /// range has fully passed.
    #[inline]
    fn roll(&mut self, now: u64) {
        let start = match self.win_start {
            Some(s) => s,
            None => {
                self.win_start = Some(now);
                self.cur.start = now;
                return;
            }
        };
        if now < start.saturating_add(self.width) {
            return;
        }
        self.roll_slow(now);
    }

    #[inline(never)]
    fn roll_slow(&mut self, now: u64) {
        while let Some(start) = self.win_start {
            let end = start.saturating_add(self.width);
            if now < end {
                break;
            }
            self.push_window();
        }
    }

    #[inline]
    fn push_window(&mut self) {
        let next = match self.win_start {
            Some(s) => s.saturating_add(self.width),
            None => return,
        };
        if self.windows.len() < self.windows.capacity() {
            self.windows.push(self.cur);
        } else {
            self.dropped += 1;
        }
        self.win_start = Some(next);
        self.cur = IntervalRecord {
            start: next,
            ..IntervalRecord::default()
        };
    }
    // hbat-lint: cold

    /// Every completed window as versioned JSONL, one object per line.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            out.push_str(&w.render_json());
            out.push('\n');
        }
        out
    }
}

impl Recorder for IntervalRecorder {
    const ENABLED: bool = true;

    // hbat-lint: hot
    #[inline]
    fn issue_cycle(&mut self, now: u64, issued: u32) {
        self.roll(now);
        self.cur.cycles += 1;
        self.cur.issue_cycles += 1;
        self.cur.issued += u64::from(issued);
    }

    #[inline]
    fn stall_cycle(&mut self, now: u64, cause: StallCause) {
        self.roll(now);
        self.cur.cycles += 1;
        // hbat-lint: allow(panic, panic-reach) index() < COUNT by construction; the array is [_; COUNT]
        self.cur.stalls[cause.index()] += 1;
    }

    #[inline]
    fn commit_cycle(&mut self, now: u64, committed: u32) {
        self.roll(now);
        self.cur.committed += u64::from(committed);
    }

    #[inline]
    fn tlb_lookup(&mut self, now: u64, hit: bool) {
        self.roll(now);
        self.cur.tlb_lookups += 1;
        self.cur.tlb_misses += u64::from(!hit);
    }

    #[inline]
    fn dcache_access(&mut self, now: u64, hit: bool) {
        self.roll(now);
        self.cur.dcache_accesses += 1;
        self.cur.dcache_misses += u64::from(!hit);
    }

    #[inline]
    fn walk(&mut self, now: u64, _vpn: u64, latency: u64) {
        self.roll(now);
        self.cur.walks += 1;
        self.cur.walk_cycles += latency;
    }

    #[inline]
    fn sample(&mut self, now: u64, occupancy: &OccupancySample) {
        self.roll(now);
        self.cur.rob_sum += u64::from(occupancy.rob);
        self.cur.lsq_sum += u64::from(occupancy.lsq);
        self.cur.samples += 1;
    }
    // hbat-lint: cold

    fn sample_interval(&self) -> u64 {
        self.sample_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const _: () = assert!(IntervalRecorder::ENABLED);

    fn feed_cycles(rec: &mut IntervalRecorder, range: std::ops::Range<u64>) {
        for now in range {
            if now % 3 == 0 {
                rec.stall_cycle(now, StallCause::DcacheMiss);
            } else {
                rec.issue_cycle(now, 2);
                rec.commit_cycle(now, 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "interval width must be >= 2")]
    fn width_zero_is_rejected() {
        let _ = IntervalRecorder::new(0);
    }

    #[test]
    #[should_panic(expected = "interval width must be >= 2")]
    fn width_one_is_rejected() {
        let _ = IntervalRecorder::new(1);
    }

    #[test]
    fn windows_anchor_at_first_observed_cycle() {
        // Cycle numbering starting at 1 (the engine's convention) must
        // still produce a full-width window 0.
        let mut rec = IntervalRecorder::new(10);
        feed_cycles(&mut rec, 1..21);
        rec.finish();
        let w = rec.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start, 1);
        assert_eq!(w[0].cycles, 10);
        assert_eq!(w[1].start, 11);
        assert_eq!(w[1].cycles, 10);
    }

    #[test]
    fn per_window_invariant_and_partial_tail() {
        // 25 cycles into width-10 windows: two full windows plus a
        // 5-cycle partial tail.
        let mut rec = IntervalRecorder::new(10);
        feed_cycles(&mut rec, 0..25);
        rec.finish();
        let w = rec.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[2].start, 20);
        assert_eq!(w[2].cycles, 5, "trailing window reports true length");
        for win in w {
            assert_eq!(
                win.issue_cycles + win.stall_cycles(),
                win.cycles,
                "issue+stalls==cycles must hold inside every window"
            );
        }
        assert_eq!(w.iter().map(|w| w.cycles).sum::<u64>(), 25);
    }

    #[test]
    fn run_shorter_than_one_window_yields_one_partial_window() {
        let mut rec = IntervalRecorder::new(1000);
        feed_cycles(&mut rec, 0..7);
        assert!(rec.windows().is_empty(), "nothing complete before finish");
        rec.finish();
        assert_eq!(rec.windows().len(), 1);
        assert_eq!(rec.windows()[0].cycles, 7);
        // finish is idempotent.
        rec.finish();
        assert_eq!(rec.windows().len(), 1);
    }

    #[test]
    fn finish_on_untouched_recorder_is_a_no_op() {
        let mut rec = IntervalRecorder::new(10);
        rec.finish();
        assert!(rec.windows().is_empty());
        assert_eq!(rec.dropped_windows(), 0);
    }

    #[test]
    fn rates_and_means_derive_per_window() {
        let mut rec = IntervalRecorder::new(4);
        rec.issue_cycle(0, 4);
        rec.commit_cycle(0, 2);
        rec.tlb_lookup(0, true);
        rec.tlb_lookup(1, false);
        rec.dcache_access(1, true);
        rec.dcache_access(1, true);
        rec.dcache_access(2, false);
        rec.walk(2, 0x42, 30);
        rec.sample(
            2,
            &OccupancySample {
                rob: 10,
                lsq: 4,
                ..OccupancySample::default()
            },
        );
        rec.sample(
            3,
            &OccupancySample {
                rob: 20,
                lsq: 6,
                ..OccupancySample::default()
            },
        );
        rec.stall_cycle(1, StallCause::TlbWalk);
        rec.stall_cycle(2, StallCause::TlbWalk);
        rec.issue_cycle(3, 1);
        rec.commit_cycle(3, 1);
        rec.finish();

        let w = rec.windows()[0];
        assert_eq!(w.cycles, 4);
        assert_eq!(w.committed, 3);
        assert!((w.ipc() - 0.75).abs() < 1e-12);
        assert!((w.issue_ipc() - 1.25).abs() < 1e-12);
        assert_eq!(w.tlb_hit_rate(), Some(0.5));
        assert!((w.dcache_hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.rob_mean(), Some(15.0));
        assert_eq!(w.lsq_mean(), Some(5.0));
        assert_eq!(w.walks, 1);
        assert_eq!(w.walk_cycles, 30);
        assert_eq!(w.stalls[StallCause::TlbWalk.index()], 2);
    }

    #[test]
    fn empty_window_rates_are_none_not_nan() {
        let w = IntervalRecord::default();
        assert_eq!(w.tlb_hit_rate(), None);
        assert_eq!(w.dcache_hit_rate(), None);
        assert_eq!(w.rob_mean(), None);
        assert_eq!(w.ipc(), 0.0);
    }

    #[test]
    fn window_buffer_is_bounded_and_counts_drops() {
        let mut rec = IntervalRecorder::with_capacity(2, 3);
        let cap_before = rec.windows.capacity();
        feed_cycles(&mut rec, 0..20); // 10 windows into a 3-slot buffer
        rec.finish();
        assert_eq!(rec.windows().len(), 3);
        assert_eq!(rec.dropped_windows(), 7);
        assert_eq!(
            rec.windows.capacity(),
            cap_before,
            "the window buffer must never reallocate"
        );
    }

    #[test]
    fn jsonl_is_versioned_one_object_per_line() {
        let mut rec = IntervalRecorder::new(4);
        feed_cycles(&mut rec, 0..9);
        rec.finish();
        let out = rec.render_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(
                line.starts_with(&format!("{{\"v\":{INTERVAL_SCHEMA_VERSION},")),
                "schema version must lead every record: {line}"
            );
            assert!(line.ends_with('}'));
            for key in [
                "\"start\":",
                "\"cycles\":",
                "\"issue\":",
                "\"committed\":",
                "\"stalls\":",
                "\"tlb-port\":",
                "\"no-ready-op\":",
                "\"tlb\":",
                "\"dcache\":",
                "\"walks\":",
                "\"occupancy\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
    }

    // The golden byte-for-byte schema pin: any change to the interval
    // record layout must be a conscious version bump.
    #[test]
    fn golden_interval_record_schema() {
        let mut rec = IntervalRecorder::new(4);
        rec.issue_cycle(0, 3);
        rec.commit_cycle(0, 2);
        rec.stall_cycle(1, StallCause::TlbPort);
        rec.tlb_lookup(1, false);
        rec.dcache_access(2, true);
        rec.walk(2, 9, 30);
        rec.sample(
            3,
            &OccupancySample {
                rob: 5,
                lsq: 2,
                mshrs: 1,
                tlb_queue: 0,
            },
        );
        rec.issue_cycle(3, 1);
        rec.commit_cycle(3, 1);
        rec.finish();
        assert_eq!(
            rec.render_jsonl(),
            "{\"v\":1,\"start\":0,\"cycles\":3,\"issue\":2,\"issued\":4,\"committed\":3,\
             \"stalls\":{\"tlb-port\":1,\"tlb-walk\":0,\"dcache-port\":0,\"dcache-miss\":0,\
             \"rob-full\":0,\"lsq-full\":0,\"fetch-starved\":0,\"no-ready-op\":0},\
             \"tlb\":{\"lookups\":1,\"misses\":1},\"dcache\":{\"accesses\":1,\"misses\":0},\
             \"walks\":{\"count\":1,\"cycles\":30},\
             \"occupancy\":{\"rob_sum\":5,\"lsq_sum\":2,\"samples\":1}}\n"
        );
    }
}
