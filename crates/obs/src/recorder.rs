//! The [`Recorder`] contract between the timing engine and any
//! observability sink, and the stall-attribution taxonomy.

/// Why a cycle issued no new operations. Exactly one cause is charged
/// per non-issuing cycle, by the engine's priority classifier (most
/// specific in-cycle evidence first; see DESIGN.md §10):
///
/// 1. [`TlbPort`](StallCause::TlbPort) — a translation request was
///    rejected for lack of a translator port this cycle;
/// 2. [`TlbWalk`](StallCause::TlbWalk) — a TLB miss is blocking: a
///    page-table walk is pending, in progress, or a speculative miss
///    has frozen dispatch until squash;
/// 3. [`DcachePort`](StallCause::DcachePort) — a data-cache access
///    found no free cache port this cycle;
/// 4. [`DcacheMiss`](StallCause::DcacheMiss) — an executed operation is
///    waiting on a data-cache fill;
/// 5. [`RobFull`](StallCause::RobFull) — dispatch blocked on a full
///    re-order buffer;
/// 6. [`LsqFull`](StallCause::LsqFull) — dispatch blocked on a full
///    load/store queue;
/// 7. [`FetchStarved`](StallCause::FetchStarved) — nothing to issue
///    because fetch is stalled (I-cache miss, redirect penalty) or the
///    window is empty;
/// 8. [`NoReadyOp`](StallCause::NoReadyOp) — work is in flight but no
///    operation has its operands and functional unit ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Translation request rejected: no translator port free.
    TlbPort,
    /// TLB miss: page-table walk pending/in progress, or a speculative
    /// miss froze dispatch.
    TlbWalk,
    /// Data-cache access rejected: no cache port free.
    DcachePort,
    /// Waiting on a data-cache fill.
    DcacheMiss,
    /// Re-order buffer full.
    RobFull,
    /// Load/store queue full.
    LsqFull,
    /// Fetch stalled or window empty.
    FetchStarved,
    /// In-flight work, but no operation ready to issue.
    NoReadyOp,
}

impl StallCause {
    /// Number of causes in the taxonomy.
    pub const COUNT: usize = 8;

    /// Every cause, in classifier priority order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::TlbPort,
        StallCause::TlbWalk,
        StallCause::DcachePort,
        StallCause::DcacheMiss,
        StallCause::RobFull,
        StallCause::LsqFull,
        StallCause::FetchStarved,
        StallCause::NoReadyOp,
    ];

    /// Stable dense index, for counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable kebab-case name, used in tables and JSONL events.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::TlbPort => "tlb-port",
            StallCause::TlbWalk => "tlb-walk",
            StallCause::DcachePort => "dcache-port",
            StallCause::DcacheMiss => "dcache-miss",
            StallCause::RobFull => "rob-full",
            StallCause::LsqFull => "lsq-full",
            StallCause::FetchStarved => "fetch-starved",
            StallCause::NoReadyOp => "no-ready-op",
        }
    }
}

/// A fixed-bandwidth resource whose per-cycle port conflicts are
/// observable events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortResource {
    /// A translator port (any design; `Outcome::Retry`).
    Tlb,
    /// A data-cache port.
    Dcache,
    /// The instruction-cache fetch port.
    Icache,
}

impl PortResource {
    /// Number of observable resources.
    pub const COUNT: usize = 3;

    /// Every resource, in index order.
    pub const ALL: [PortResource; PortResource::COUNT] = [
        PortResource::Tlb,
        PortResource::Dcache,
        PortResource::Icache,
    ];

    /// Stable dense index, for counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable name, used in tables and JSONL events.
    pub fn name(self) -> &'static str {
        match self {
            PortResource::Tlb => "tlb",
            PortResource::Dcache => "dcache",
            PortResource::Icache => "icache",
        }
    }
}

/// One occupancy snapshot, taken every [`Recorder::sample_interval`]
/// cycles: how full the machine's queues are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancySample {
    /// Re-order buffer entries occupied.
    pub rob: u32,
    /// Load/store queue entries occupied.
    pub lsq: u32,
    /// Data-cache fills in flight (MSHR-equivalent occupancy).
    pub mshrs: u32,
    /// Translator-internal queue depth (busy banks / queued ports).
    pub tlb_queue: u32,
}

/// An observability sink the timing engine is generic over.
///
/// The engine calls exactly one of [`issue_cycle`](Recorder::issue_cycle)
/// or [`stall_cycle`](Recorder::stall_cycle) per simulated cycle, so
/// `issue cycles + Σ stall counts == total cycles` holds by
/// construction. All probes are `&mut self` reads of engine state —
/// a recorder must never influence the simulation.
///
/// [`ENABLED`](Recorder::ENABLED) is a `const`: with [`NullRecorder`]
/// the probes (and the classifier work feeding them) compile away
/// entirely, keeping the hot loop identical to an uninstrumented build.
pub trait Recorder {
    /// Statically known on/off switch; `false` compiles probes out.
    const ENABLED: bool;

    /// A cycle in which `issued` (> 0) new operations issued.
    fn issue_cycle(&mut self, now: u64, issued: u32) {
        let _ = (now, issued);
    }

    /// A cycle in which no operation issued, charged to `cause`.
    fn stall_cycle(&mut self, now: u64, cause: StallCause) {
        let _ = (now, cause);
    }

    /// A request found every port of `resource` busy this cycle.
    fn port_conflict(&mut self, now: u64, resource: PortResource) {
        let _ = (now, resource);
    }

    /// A page-table walk of `latency` cycles began for `vpn`.
    fn walk(&mut self, now: u64, vpn: u64, latency: u64) {
        let _ = (now, vpn, latency);
    }

    /// An occupancy snapshot (taken by the engine every
    /// [`sample_interval`](Recorder::sample_interval) cycles).
    fn sample(&mut self, now: u64, occupancy: &OccupancySample) {
        let _ = (now, occupancy);
    }

    /// A cycle in which `committed` (> 0) operations retired.
    fn commit_cycle(&mut self, now: u64, committed: u32) {
        let _ = (now, committed);
    }

    /// A translation request was served (`Outcome::Hit`/`Outcome::Miss`).
    /// Port rejects are *not* lookups; they arrive via
    /// [`port_conflict`](Recorder::port_conflict) instead.
    fn tlb_lookup(&mut self, now: u64, hit: bool) {
        let _ = (now, hit);
    }

    /// A data-cache access was served (hit or fill started). Port
    /// rejects arrive via [`port_conflict`](Recorder::port_conflict).
    fn dcache_access(&mut self, now: u64, hit: bool) {
        let _ = (now, hit);
    }

    /// Cycles between occupancy samples; 0 disables sampling.
    fn sample_interval(&self) -> u64 {
        0
    }
}

/// The do-nothing recorder: every probe is an empty `#[inline]` default
/// and `ENABLED` is `false`, so an engine instantiated with it is
/// bit-identical (and equally fast) to one with no instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;
}

/// Delegation through a mutable borrow, so a caller can keep ownership
/// of a [`TraceRecorder`](crate::TraceRecorder) and read it back after
/// the engine (which takes its recorder by value) has run.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    fn issue_cycle(&mut self, now: u64, issued: u32) {
        (**self).issue_cycle(now, issued);
    }

    fn stall_cycle(&mut self, now: u64, cause: StallCause) {
        (**self).stall_cycle(now, cause);
    }

    fn port_conflict(&mut self, now: u64, resource: PortResource) {
        (**self).port_conflict(now, resource);
    }

    fn walk(&mut self, now: u64, vpn: u64, latency: u64) {
        (**self).walk(now, vpn, latency);
    }

    fn sample(&mut self, now: u64, occupancy: &OccupancySample) {
        (**self).sample(now, occupancy);
    }

    fn commit_cycle(&mut self, now: u64, committed: u32) {
        (**self).commit_cycle(now, committed);
    }

    fn tlb_lookup(&mut self, now: u64, hit: bool) {
        (**self).tlb_lookup(now, hit);
    }

    fn dcache_access(&mut self, now: u64, hit: bool) {
        (**self).dcache_access(now, hit);
    }

    fn sample_interval(&self) -> u64 {
        (**self).sample_interval()
    }
}

/// Fans every probe out to two recorders, so one run can feed e.g. a
/// [`TraceRecorder`](crate::TraceRecorder) and an
/// [`IntervalRecorder`](crate::IntervalRecorder) at once
/// (`hbat trace --intervals`). Statically on iff either side is.
#[derive(Debug, Default)]
pub struct Tee<A, B> {
    /// First sink (probed first).
    pub a: A,
    /// Second sink.
    pub b: B,
}

impl<A, B> Tee<A, B> {
    /// Combines two recorders into one.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }
}

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn issue_cycle(&mut self, now: u64, issued: u32) {
        self.a.issue_cycle(now, issued);
        self.b.issue_cycle(now, issued);
    }

    fn stall_cycle(&mut self, now: u64, cause: StallCause) {
        self.a.stall_cycle(now, cause);
        self.b.stall_cycle(now, cause);
    }

    fn port_conflict(&mut self, now: u64, resource: PortResource) {
        self.a.port_conflict(now, resource);
        self.b.port_conflict(now, resource);
    }

    fn walk(&mut self, now: u64, vpn: u64, latency: u64) {
        self.a.walk(now, vpn, latency);
        self.b.walk(now, vpn, latency);
    }

    fn sample(&mut self, now: u64, occupancy: &OccupancySample) {
        self.a.sample(now, occupancy);
        self.b.sample(now, occupancy);
    }

    fn commit_cycle(&mut self, now: u64, committed: u32) {
        self.a.commit_cycle(now, committed);
        self.b.commit_cycle(now, committed);
    }

    fn tlb_lookup(&mut self, now: u64, hit: bool) {
        self.a.tlb_lookup(now, hit);
        self.b.tlb_lookup(now, hit);
    }

    fn dcache_access(&mut self, now: u64, hit: bool) {
        self.a.dcache_access(now, hit);
        self.b.dcache_access(now, hit);
    }

    /// The finer of the two sides' sampling cadences (a disabled side,
    /// interval 0, defers to the other).
    fn sample_interval(&self) -> u64 {
        match (self.a.sample_interval(), self.b.sample_interval()) {
            (0, b) => b,
            (a, 0) => a,
            (a, b) => a.min(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_indices_are_dense_and_stable() {
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        let names: std::collections::BTreeSet<_> =
            StallCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), StallCause::COUNT, "names must be distinct");
        assert_eq!(StallCause::TlbPort.name(), "tlb-port");
        assert_eq!(StallCause::NoReadyOp.name(), "no-ready-op");
    }

    // Compile-time: the null recorder is statically off, including
    // through the `&mut R` delegation impl.
    const _: () = assert!(!NullRecorder::ENABLED);
    const _: () = assert!(!<&mut NullRecorder as Recorder>::ENABLED);

    #[test]
    fn null_recorder_is_statically_off() {
        let mut r = NullRecorder;
        r.issue_cycle(0, 3);
        r.stall_cycle(1, StallCause::RobFull);
        r.port_conflict(2, PortResource::Tlb);
        r.walk(3, 7, 30);
        r.sample(4, &OccupancySample::default());
        r.commit_cycle(5, 2);
        r.tlb_lookup(6, true);
        r.dcache_access(7, false);
        assert_eq!(r.sample_interval(), 0);
    }

    // Compile-time: a tee of two null recorders stays statically off;
    // one enabled side turns the tee on.
    struct On;
    impl Recorder for On {
        const ENABLED: bool = true;
        fn sample_interval(&self) -> u64 {
            96
        }
    }
    const _: () = assert!(!<Tee<NullRecorder, NullRecorder> as Recorder>::ENABLED);
    const _: () = assert!(<Tee<NullRecorder, On> as Recorder>::ENABLED);
    const _: () = assert!(<Tee<On, NullRecorder> as Recorder>::ENABLED);

    #[test]
    fn tee_forwards_to_both_sides_and_picks_finer_sampling() {
        #[derive(Default)]
        struct Counting {
            probes: u32,
            interval: u64,
        }
        impl Recorder for Counting {
            const ENABLED: bool = true;
            fn issue_cycle(&mut self, _now: u64, _issued: u32) {
                self.probes += 1;
            }
            fn stall_cycle(&mut self, _now: u64, _cause: StallCause) {
                self.probes += 1;
            }
            fn commit_cycle(&mut self, _now: u64, _committed: u32) {
                self.probes += 1;
            }
            fn tlb_lookup(&mut self, _now: u64, _hit: bool) {
                self.probes += 1;
            }
            fn dcache_access(&mut self, _now: u64, _hit: bool) {
                self.probes += 1;
            }
            fn sample_interval(&self) -> u64 {
                self.interval
            }
        }

        let mut tee = Tee::new(
            Counting {
                interval: 64,
                ..Counting::default()
            },
            Counting {
                interval: 32,
                ..Counting::default()
            },
        );
        tee.issue_cycle(0, 4);
        tee.stall_cycle(1, StallCause::TlbWalk);
        tee.commit_cycle(1, 2);
        tee.tlb_lookup(2, true);
        tee.dcache_access(2, false);
        assert_eq!(tee.a.probes, 5);
        assert_eq!(tee.b.probes, 5);
        assert_eq!(tee.sample_interval(), 32, "finer cadence wins");

        // A disabled (interval 0) side defers to the other.
        let zero = Tee::new(
            Counting {
                interval: 0,
                ..Counting::default()
            },
            Counting {
                interval: 64,
                ..Counting::default()
            },
        );
        assert_eq!(zero.sample_interval(), 64);
    }

    #[test]
    fn resource_names() {
        assert_eq!(PortResource::Tlb.name(), "tlb");
        assert_eq!(PortResource::Dcache.index(), 1);
        assert_eq!(PortResource::Icache.index(), 2);
    }
}
