//! The collecting recorder: stall attribution, occupancy histograms,
//! port-conflict counts, and a bounded cycle-stamped event stream.

use crate::histogram::Histogram;
use crate::recorder::{OccupancySample, PortResource, Recorder, StallCause};

/// Schema version stamped as the first key (`"v"`) of every rendered
/// event record (the `hbat trace --out` JSONL stream). Bump on any key
/// change; the golden test below pins the byte-exact layout.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// Default capacity of the bounded event buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Default occupancy sampling interval, in cycles.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

/// One cycle-stamped observation, renderable as a JSONL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A non-issuing cycle and the cause it was charged to.
    Stall {
        /// Cycle the stall occurred.
        now: u64,
        /// Cause charged by the classifier.
        cause: StallCause,
    },
    /// A request found every port of a resource busy.
    PortConflict {
        /// Cycle of the conflict.
        now: u64,
        /// Resource whose ports were all taken.
        resource: PortResource,
    },
    /// A page-table walk began.
    Walk {
        /// Cycle the walk began.
        now: u64,
        /// Virtual page number being walked.
        vpn: u64,
        /// Walk latency in cycles.
        latency: u64,
    },
    /// A periodic occupancy snapshot.
    Sample {
        /// Cycle of the snapshot.
        now: u64,
        /// Queue occupancies at that cycle.
        occupancy: OccupancySample,
    },
}

impl Event {
    /// Append this event as one JSON object (no trailing newline) to
    /// `out`. Keys are stable; the schema version (`"v"`) is always
    /// first, then the cycle.
    pub fn render_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"v\":{EVENT_SCHEMA_VERSION},");
        match *self {
            Event::Stall { now, cause } => {
                let _ = write!(
                    out,
                    "\"cycle\":{now},\"event\":\"stall\",\"cause\":\"{}\"}}",
                    cause.name()
                );
            }
            Event::PortConflict { now, resource } => {
                let _ = write!(
                    out,
                    "\"cycle\":{now},\"event\":\"port-conflict\",\"resource\":\"{}\"}}",
                    resource.name()
                );
            }
            Event::Walk { now, vpn, latency } => {
                let _ = write!(
                    out,
                    "\"cycle\":{now},\"event\":\"walk\",\"vpn\":{vpn},\"latency\":{latency}}}"
                );
            }
            Event::Sample { now, occupancy } => {
                let _ = write!(
                    out,
                    "\"cycle\":{now},\"event\":\"sample\",\"rob\":{},\"lsq\":{},\"mshrs\":{},\"tlb_queue\":{}}}",
                    occupancy.rob, occupancy.lsq, occupancy.mshrs, occupancy.tlb_queue
                );
            }
        }
    }
}

/// Queue capacities used to size the occupancy histograms; values
/// beyond a capacity saturate into the last bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyCaps {
    /// Re-order buffer entries.
    pub rob: u32,
    /// Load/store queue entries.
    pub lsq: u32,
    /// Outstanding data-cache fills worth distinguishing.
    pub mshrs: u32,
    /// Translator queue depth worth distinguishing.
    pub tlb_queue: u32,
}

impl Default for OccupancyCaps {
    fn default() -> Self {
        OccupancyCaps {
            rob: 64,
            lsq: 32,
            mshrs: 16,
            tlb_queue: 16,
        }
    }
}

/// A [`Recorder`] that keeps everything: per-cause stall counters, four
/// occupancy histograms, per-resource port-conflict counts, walk
/// statistics, and a *bounded* pre-allocated event buffer (events past
/// the capacity are counted in [`dropped_events`](Self::dropped_events)
/// rather than grown into — the recording path never allocates).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    stalls: [u64; StallCause::COUNT],
    issue_cycles: u64,
    issued_ops: u64,
    port_conflicts: [u64; PortResource::COUNT],
    walks: u64,
    walk_cycles: u64,
    rob: Histogram,
    lsq: Histogram,
    mshrs: Histogram,
    tlb_queue: Histogram,
    sample_interval: u64,
    events: Vec<Event>,
    dropped: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A recorder with default histogram capacities, event capacity,
    /// and sampling interval.
    pub fn new() -> Self {
        Self::with_caps(OccupancyCaps::default())
    }

    /// A recorder whose histograms are sized for the given queue
    /// capacities.
    pub fn with_caps(caps: OccupancyCaps) -> Self {
        TraceRecorder {
            stalls: [0; StallCause::COUNT],
            issue_cycles: 0,
            issued_ops: 0,
            port_conflicts: [0; PortResource::COUNT],
            walks: 0,
            walk_cycles: 0,
            rob: Histogram::new(caps.rob),
            lsq: Histogram::new(caps.lsq),
            mshrs: Histogram::new(caps.mshrs),
            tlb_queue: Histogram::new(caps.tlb_queue),
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
            events: Vec::with_capacity(DEFAULT_EVENT_CAPACITY),
            dropped: 0,
        }
    }

    /// Set the occupancy sampling interval (0 disables sampling).
    pub fn set_sample_interval(&mut self, cycles: u64) -> &mut Self {
        self.sample_interval = cycles;
        self
    }

    /// Resize the bounded event buffer (0 keeps only counters).
    pub fn set_event_capacity(&mut self, cap: usize) -> &mut Self {
        self.events = Vec::with_capacity(cap);
        self.dropped = 0;
        self
    }

    // hbat-lint: hot
    #[inline]
    fn push_event(&mut self, ev: Event) {
        if self.events.len() < self.events.capacity() {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
    // hbat-lint: cold

    /// Cycles in which at least one operation issued.
    pub fn issue_cycles(&self) -> u64 {
        self.issue_cycles
    }

    /// Total operations issued across all issue cycles.
    pub fn issued_ops(&self) -> u64 {
        self.issued_ops
    }

    /// Stall cycles charged to `cause`.
    pub fn stall(&self, cause: StallCause) -> u64 {
        // hbat-lint: allow(panic) index() < COUNT by construction; the array is [_; COUNT]
        self.stalls[cause.index()]
    }

    /// Total stall cycles across the taxonomy.
    pub fn stall_total(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Total cycles observed (`issue_cycles + stall_total`); matches
    /// the engine's cycle count by construction.
    pub fn cycles(&self) -> u64 {
        self.issue_cycles + self.stall_total()
    }

    /// The stall breakdown in classifier priority order.
    pub fn stall_breakdown(&self) -> [(StallCause, u64); StallCause::COUNT] {
        let mut out = [(StallCause::TlbPort, 0); StallCause::COUNT];
        for (slot, &cause) in out.iter_mut().zip(StallCause::ALL.iter()) {
            *slot = (cause, self.stalls[cause.index()]);
        }
        out
    }

    /// Port conflicts observed on `resource`.
    pub fn port_conflicts(&self, resource: PortResource) -> u64 {
        // hbat-lint: allow(panic) index() < COUNT by construction; the array is [_; COUNT]
        self.port_conflicts[resource.index()]
    }

    /// Page-table walks begun.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total latency, in cycles, of all walks begun.
    pub fn walk_cycles(&self) -> u64 {
        self.walk_cycles
    }

    /// Re-order buffer occupancy histogram.
    pub fn rob_occupancy(&self) -> &Histogram {
        &self.rob
    }

    /// Load/store queue occupancy histogram.
    pub fn lsq_occupancy(&self) -> &Histogram {
        &self.lsq
    }

    /// In-flight data-cache fill (MSHR) occupancy histogram.
    pub fn mshr_occupancy(&self) -> &Histogram {
        &self.mshrs
    }

    /// Translator queue-depth histogram.
    pub fn tlb_queue_occupancy(&self) -> &Histogram {
        &self.tlb_queue
    }

    /// The captured events, oldest first (bounded by the buffer
    /// capacity; see [`dropped_events`](Self::dropped_events)).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events that arrived after the buffer filled.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Render the captured events as JSON Lines: one object per event,
    /// `\n`-terminated, cycle-ordered as captured.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 48);
        for ev in &self.events {
            ev.render_json(&mut out);
            out.push('\n');
        }
        out
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    // hbat-lint: hot
    #[inline]
    fn issue_cycle(&mut self, _now: u64, issued: u32) {
        self.issue_cycles += 1;
        self.issued_ops += issued as u64;
    }

    #[inline]
    fn stall_cycle(&mut self, now: u64, cause: StallCause) {
        self.stalls[cause.index()] += 1;
        self.push_event(Event::Stall { now, cause });
    }

    #[inline]
    fn port_conflict(&mut self, now: u64, resource: PortResource) {
        self.port_conflicts[resource.index()] += 1;
        self.push_event(Event::PortConflict { now, resource });
    }

    #[inline]
    fn walk(&mut self, now: u64, vpn: u64, latency: u64) {
        self.walks += 1;
        self.walk_cycles += latency;
        self.push_event(Event::Walk { now, vpn, latency });
    }

    #[inline]
    fn sample(&mut self, now: u64, occupancy: &OccupancySample) {
        self.rob.record(occupancy.rob);
        self.lsq.record(occupancy.lsq);
        self.mshrs.record(occupancy.mshrs);
        self.tlb_queue.record(occupancy.tlb_queue);
        self.push_event(Event::Sample {
            now,
            occupancy: *occupancy,
        });
    }
    // hbat-lint: cold

    fn sample_interval(&self) -> u64 {
        self.sample_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_to_cycles() {
        let mut r = TraceRecorder::new();
        r.issue_cycle(0, 4);
        r.issue_cycle(1, 2);
        r.stall_cycle(2, StallCause::RobFull);
        r.stall_cycle(3, StallCause::TlbWalk);
        r.stall_cycle(4, StallCause::TlbWalk);
        assert_eq!(r.issue_cycles(), 2);
        assert_eq!(r.issued_ops(), 6);
        assert_eq!(r.stall(StallCause::TlbWalk), 2);
        assert_eq!(r.stall_total(), 3);
        assert_eq!(r.cycles(), 5);
        let breakdown = r.stall_breakdown();
        assert_eq!(breakdown[StallCause::RobFull.index()].1, 1);
    }

    #[test]
    fn events_are_bounded_not_grown() {
        let mut r = TraceRecorder::new();
        r.set_event_capacity(2);
        let cap_before = r.events.capacity();
        for now in 0..10 {
            r.stall_cycle(now, StallCause::NoReadyOp);
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped_events(), 8);
        assert_eq!(r.events.capacity(), cap_before, "buffer never reallocates");
        assert_eq!(r.stall(StallCause::NoReadyOp), 10, "counters never drop");
    }

    #[test]
    fn samples_feed_histograms() {
        let mut r = TraceRecorder::with_caps(OccupancyCaps {
            rob: 4,
            lsq: 4,
            mshrs: 4,
            tlb_queue: 4,
        });
        r.sample(
            64,
            &OccupancySample {
                rob: 3,
                lsq: 1,
                mshrs: 9,
                tlb_queue: 0,
            },
        );
        assert_eq!(r.rob_occupancy().count(3), 1);
        assert_eq!(r.lsq_occupancy().count(1), 1);
        assert_eq!(r.mshr_occupancy().count(4), 1, "saturated into last bucket");
        assert_eq!(r.tlb_queue_occupancy().count(0), 1);
    }

    #[test]
    fn jsonl_rendering_is_one_object_per_line() {
        let mut r = TraceRecorder::new();
        r.stall_cycle(7, StallCause::DcachePort);
        r.port_conflict(8, PortResource::Tlb);
        r.walk(9, 42, 30);
        r.sample(
            64,
            &OccupancySample {
                rob: 1,
                lsq: 2,
                mshrs: 3,
                tlb_queue: 4,
            },
        );
        let jsonl = r.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"v\":1,\"cycle\":7,\"event\":\"stall\",\"cause\":\"dcache-port\"}"
        );
        assert_eq!(
            lines[1],
            "{\"v\":1,\"cycle\":8,\"event\":\"port-conflict\",\"resource\":\"tlb\"}"
        );
        assert_eq!(
            lines[2],
            "{\"v\":1,\"cycle\":9,\"event\":\"walk\",\"vpn\":42,\"latency\":30}"
        );
        assert_eq!(
            lines[3],
            "{\"v\":1,\"cycle\":64,\"event\":\"sample\",\"rob\":1,\"lsq\":2,\"mshrs\":3,\"tlb_queue\":4}"
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    // The golden byte-for-byte schema pin (same discipline as the
    // `hbat-lint --graph` dump): every event kind's exact serialized
    // form, including the leading schema version. A change here is a
    // schema change and must bump EVENT_SCHEMA_VERSION.
    #[test]
    fn golden_event_stream_schema() {
        let mut r = TraceRecorder::new();
        for cause in StallCause::ALL {
            r.stall_cycle(100, cause);
        }
        for resource in PortResource::ALL {
            r.port_conflict(101, resource);
        }
        r.walk(102, 0xdead, 30);
        r.sample(
            128,
            &OccupancySample {
                rob: 64,
                lsq: 32,
                mshrs: 16,
                tlb_queue: 8,
            },
        );
        assert_eq!(
            r.render_jsonl(),
            concat!(
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"tlb-port\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"tlb-walk\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"dcache-port\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"dcache-miss\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"rob-full\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"lsq-full\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"fetch-starved\"}\n",
                "{\"v\":1,\"cycle\":100,\"event\":\"stall\",\"cause\":\"no-ready-op\"}\n",
                "{\"v\":1,\"cycle\":101,\"event\":\"port-conflict\",\"resource\":\"tlb\"}\n",
                "{\"v\":1,\"cycle\":101,\"event\":\"port-conflict\",\"resource\":\"dcache\"}\n",
                "{\"v\":1,\"cycle\":101,\"event\":\"port-conflict\",\"resource\":\"icache\"}\n",
                "{\"v\":1,\"cycle\":102,\"event\":\"walk\",\"vpn\":57005,\"latency\":30}\n",
                "{\"v\":1,\"cycle\":128,\"event\":\"sample\",\"rob\":64,\"lsq\":32,\"mshrs\":16,\"tlb_queue\":8}\n",
            )
        );
    }

    #[test]
    fn delegation_through_mut_ref_reaches_the_recorder() {
        // Monomorphised with R = &mut TraceRecorder, so every call
        // goes through the blanket `impl Recorder for &mut R`.
        fn drive<R: Recorder>(rec: &mut R) {
            rec.issue_cycle(0, 1);
            rec.stall_cycle(1, StallCause::LsqFull);
            assert_eq!(rec.sample_interval(), DEFAULT_SAMPLE_INTERVAL);
        }
        let mut r = TraceRecorder::new();
        drive(&mut &mut r);
        assert_eq!(r.cycles(), 2);
        assert_eq!(r.stall(StallCause::LsqFull), 1);
    }
}
