//! # hbat-obs — zero-overhead-when-off instrumentation
//!
//! The paper's whole argument (Section 2) is an attribution claim:
//! translation *bandwidth*, not raw TLB capacity, is what stalls a
//! multiple-issue pipeline. This crate gives the simulator the
//! observability to show that attribution per run instead of only
//! end-of-run totals:
//!
//! * a [`Recorder`] trait the timing engine is generic over, with a
//!   statically-dispatched [`NullRecorder`] whose probes compile to
//!   nothing — the engine hot loop stays allocation-free and
//!   bit-identical when observability is off;
//! * a [`TraceRecorder`] that collects the cycle-stamped
//!   stall-attribution taxonomy ([`StallCause`]), bounded-bucket
//!   occupancy histograms ([`Histogram`]), port-conflict counts, and a
//!   bounded buffer of cycle-stamped [`Event`]s renderable as JSONL;
//! * an [`IntervalRecorder`] that buckets the same probe stream into
//!   fixed-width cycle windows — IPC, hit rates, the stall mix, and
//!   occupancy means over *time* instead of end-of-run totals — with
//!   [`Tee`] to run it alongside a [`TraceRecorder`];
//! * a scoped wall-clock self-profiler ([`prof`]) for the simulator's
//!   own phases (trace build, predecode, warm restore, detailed run),
//!   `HBAT_PROF`-gated and off by default.
//!
//! The determinism contract: enabling a recorder never changes the
//! simulation. Probes only *read* engine state; `RunMetrics` and sweep
//! journal entries are bit-identical under [`NullRecorder`] and
//! [`TraceRecorder`] (asserted by tests in `hbat-cpu` and
//! `hbat-bench`). DESIGN.md §10 documents the taxonomy and the
//! overhead budget.
//!
//! The crate is dependency-free so every layer of the stack (core,
//! mem, cpu, bench, the CLI) can use it without coupling.

pub mod histogram;
pub mod interval;
pub mod prof;
pub mod recorder;
pub mod trace;

pub use histogram::Histogram;
pub use interval::{IntervalRecord, IntervalRecorder, INTERVAL_SCHEMA_VERSION};
pub use recorder::{NullRecorder, OccupancySample, PortResource, Recorder, StallCause, Tee};
pub use trace::{Event, TraceRecorder, EVENT_SCHEMA_VERSION};
