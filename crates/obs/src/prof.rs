//! Scoped wall-clock self-profiling for the simulator itself.
//!
//! ROADMAP item 1 stalled on a flat line profile: after the micro-op
//! rewrite no single function dominates, so the next optimization
//! round needs *phase*-level attribution — how long trace build,
//! predecode, warm restore, the detailed run, and report rendering
//! actually take — not another line profiler. This module is that
//! attribution: a dependency-free scoped timer, hierarchical (nested
//! scopes join their names with `/`), counted, and off by default.
//!
//! Enable with the `HBAT_PROF` environment variable (any value except
//! `0`/empty) or [`set_enabled`]; when off, [`scope`] is a no-op that
//! takes no lock and reads no clock. Scopes aggregate into a global
//! table keyed by path — [`report`] snapshots it, [`render_report`]
//! formats it, and the sweep executor folds the busiest phase into its
//! heartbeat line.
//!
//! Wall-clock time is observational only: nothing here feeds back into
//! the simulation, so the determinism contract of the recorders is
//! untouched.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant; // hbat-lint: allow(determinism) wall clock is observational only; nothing feeds back into the simulation

/// 0 = not yet read from the environment, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

static TABLE: Mutex<BTreeMap<String, (u64, u128)>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn table() -> std::sync::MutexGuard<'static, BTreeMap<String, (u64, u128)>> {
    // A panic inside a scope's drop can poison the lock; the table is
    // plain counters, so recover rather than propagate.
    TABLE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether profiling is on (lazily initialized from `HBAT_PROF` on
/// first call; `0` or an empty value means off).
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = matches!(std::env::var("HBAT_PROF"), Ok(v) if !v.is_empty() && v != "0");
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns profiling on or off for the whole process (the CLI `--prof`
/// flag overrides the environment through this).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Discards all recorded samples (the on/off state is kept).
pub fn reset() {
    table().clear();
}

/// A live scope timer; its `Drop` records one sample. Created by
/// [`scope`] — inactive (and free) when profiling is off.
#[must_use = "a prof scope measures the span it is alive for"]
pub struct Scope {
    /// Full `/`-joined path, `None` when profiling is off.
    path: Option<String>,
    start: Instant, // hbat-lint: allow(determinism) observational timing only
}

/// Opens a named scope. Nested scopes *on the same thread* record
/// under `parent/child` paths; a scope opened on a worker thread
/// starts a fresh path (phase names in the bench pipeline are chosen
/// to stay meaningful either way).
pub fn scope(name: &'static str) -> Scope {
    if !enabled() {
        return Scope {
            path: None,
            start: Instant::now(), // hbat-lint: allow(determinism) observational timing only
        };
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_owned()
        } else {
            let mut p = stack.join("/");
            p.push('/');
            p.push_str(name);
            p
        };
        stack.push(name);
        path
    });
    Scope {
        path: Some(path),
        start: Instant::now(), // hbat-lint: allow(determinism) observational timing only
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let nanos = self.start.elapsed().as_nanos();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut table = table();
        let entry = table.entry(path).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += nanos;
    }
}

/// One aggregated row of the profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfEntry {
    /// `/`-joined scope path.
    pub path: String,
    /// Completed scopes at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub nanos: u128,
}

impl ProfEntry {
    /// Total milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Snapshot of every recorded path, sorted by path (so children follow
/// their parents).
pub fn report() -> Vec<ProfEntry> {
    table()
        .iter()
        .map(|(path, &(count, nanos))| ProfEntry {
            path: path.clone(),
            count,
            nanos,
        })
        .collect()
}

/// The busiest *root* phase as a compact `name time` fragment for the
/// executor heartbeat, or `None` when nothing was recorded.
pub fn busiest_root() -> Option<String> {
    report()
        .into_iter()
        .filter(|e| !e.path.contains('/'))
        .max_by_key(|e| e.nanos)
        .map(|e| format!("{} {:.1}s", e.path, e.nanos as f64 / 1e9))
}

/// The profile as an aligned text table (empty string when nothing was
/// recorded — e.g. profiling was never enabled).
pub fn render_report() -> String {
    let rows = report();
    if rows.is_empty() {
        return String::new();
    }
    let width = rows.iter().map(|e| e.path.len()).max().unwrap_or(0);
    let mut out = String::from("self-profile (wall clock):\n");
    for e in &rows {
        let mean = e.millis() / e.count.max(1) as f64;
        out.push_str(&format!(
            "  {:width$}  {:>8} calls  {:>10.2} ms total  {:>9.3} ms/call\n",
            e.path,
            e.count,
            e.millis(),
            mean,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The prof table and switch are process-global; serialize the
    // tests that touch them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = locked();
        set_enabled(false);
        reset();
        {
            let _s = scope("off");
        }
        assert!(report().is_empty());
        assert_eq!(render_report(), "");
        assert_eq!(busiest_root(), None);
    }

    #[test]
    fn scopes_count_and_nest_hierarchically() {
        let _guard = locked();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _outer = scope("build");
            let _inner = scope("predecode");
        }
        {
            let _run = scope("run");
        }
        let rows = report();
        set_enabled(false);

        let paths: Vec<&str> = rows.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["build", "build/predecode", "run"]);
        assert_eq!(rows[0].count, 3);
        assert_eq!(rows[1].count, 3);
        assert_eq!(rows[2].count, 1);
        assert!(
            rows[0].nanos >= rows[1].nanos,
            "a parent covers at least its child"
        );

        let rendered = render_report();
        assert!(rendered.starts_with("self-profile"));
        assert!(rendered.contains("build/predecode"));
        assert!(rendered.contains("3 calls"));
    }

    #[test]
    fn busiest_root_ignores_children_and_reset_clears() {
        let _guard = locked();
        set_enabled(true);
        reset();
        {
            let _a = scope("alpha");
            let _child = scope("child");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _b = scope("beta");
        }
        let top = busiest_root().expect("two roots recorded");
        set_enabled(false);
        assert!(top.starts_with("alpha "), "{top}");
        assert!(!top.contains('/'));
        reset();
        assert!(report().is_empty());
    }
}
