//! One clean/dirty fixture pair per rule: every rule must pass its clean
//! fixture and demonstrably fail its dirty one.

use hbat_lint::diag::{Diagnostic, Rule};
use hbat_lint::lint_workspace;
use hbat_lint::rules::LintOptions;

fn lint_one(rel: &str, src: &str) -> Vec<Diagnostic> {
    lint_workspace(
        &[(rel.to_string(), src.to_string())],
        &LintOptions::default(),
    )
}

fn count(diags: &[Diagnostic], rule: Rule) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn r1_clean_fixture_passes() {
    let d = lint_one(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r1_clean.rs"),
    );
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn r1_dirty_fixture_fails() {
    let d = lint_one(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r1_dirty.rs"),
    );
    assert!(count(&d, Rule::Determinism) >= 3, "{d:#?}");
    assert!(
        d.iter().any(|d| d.message.contains("Instant")),
        "wall clock must be flagged: {d:#?}"
    );
    assert!(
        d.iter().any(|d| d.message.contains("hash-ordered")),
        "hash iteration must be flagged: {d:#?}"
    );
}

#[test]
fn r1_dirty_in_report_crate_flags_containers_wholesale() {
    let d = lint_one(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/r1_dirty.rs"),
    );
    assert!(
        d.iter().any(|d| d.message.contains("report-producing")),
        "{d:#?}"
    );
}

#[test]
fn r2_clean_fixture_passes() {
    let d = lint_one(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/r2_clean.rs"),
    );
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn r2_dirty_fixture_fails() {
    let d = lint_one(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/r2_dirty.rs"),
    );
    assert_eq!(
        count(&d, Rule::HotPath),
        3,
        "Vec::new, format!, .to_vec(): {d:#?}"
    );
}

#[test]
fn r3_clean_fixture_passes() {
    let d = lint_one(
        "crates/isa/src/fixture.rs",
        include_str!("fixtures/r3_clean.rs"),
    );
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn r3_dirty_fixture_fails() {
    let d = lint_one(
        "crates/isa/src/fixture.rs",
        include_str!("fixtures/r3_dirty.rs"),
    );
    // unwrap, computed index, panic!, todo!, and one reasonless allow().
    assert_eq!(count(&d, Rule::PanicPolicy), 5, "{d:#?}");
    assert!(d.iter().any(|d| d.message.contains("reason")), "{d:#?}");
}

#[test]
fn r3_dirty_fixture_passes_outside_panic_crates() {
    // `cpu` is not in PANIC_CRATES (`bench` joined the list when it
    // grew the fault-tolerance layer, so it no longer qualifies here).
    let d = lint_one(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/r3_dirty.rs"),
    );
    assert_eq!(
        count(&d, Rule::PanicPolicy),
        1,
        "only the reasonless allow() remains: {d:#?}"
    );
}

fn r4_workspace(user: &str) -> Vec<Diagnostic> {
    lint_workspace(
        &[
            (
                "shims/rand/src/lib.rs".to_string(),
                include_str!("fixtures/r4_shim.rs").to_string(),
            ),
            ("crates/cpu/src/fixture.rs".to_string(), user.to_string()),
        ],
        &LintOptions::default(),
    )
}

#[test]
fn r4_clean_fixture_passes() {
    let d = r4_workspace(include_str!("fixtures/r4_clean.rs"));
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn r4_dirty_fixture_fails() {
    let d = r4_workspace(include_str!("fixtures/r4_dirty.rs"));
    assert_eq!(count(&d, Rule::ShimDrift), 2, "{d:#?}");
    assert!(d.iter().any(|d| d.message.contains("thread_rng")), "{d:#?}");
    assert!(
        d.iter().any(|d| d.message.contains("WeightedIndex")),
        "{d:#?}"
    );
}

/// The R5 fixtures are a two-file workspace: a hot caller in `cpu` and
/// the callee under test in `mem` — a different file *and* crate.
fn r5_workspace(callee: &str) -> Vec<Diagnostic> {
    lint_workspace(
        &[
            (
                "crates/cpu/src/fixture.rs".to_string(),
                include_str!("fixtures/r5_caller.rs").to_string(),
            ),
            ("crates/mem/src/lib.rs".to_string(), callee.to_string()),
        ],
        &LintOptions::default(),
    )
}

#[test]
fn r5_clean_fixture_passes() {
    let d = r5_workspace(include_str!("fixtures/r5_callee_clean.rs"));
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn r5_dirty_fixture_fails() {
    let d = r5_workspace(include_str!("fixtures/r5_callee_dirty.rs"));
    assert_eq!(count(&d, Rule::HotProp), 1, "{d:#?}");
    assert!(d[0].file.contains("mem"), "flagged in the callee: {d:#?}");
    assert!(
        d[0].message.contains("scan_loop -> build_index") || d[0].message.contains("build_index"),
        "witness chain: {d:#?}"
    );
}

/// The regression the tentpole exists for: a hot-region call into an
/// allocating helper in a different crate. R2 only sees literal hot
/// lines, so with R5 off the dirty workspace passes — proving the
/// intraprocedural rule misses exactly what the propagation catches.
#[test]
fn r5_catches_cross_crate_allocation_that_r2_misses() {
    let files = [
        (
            "crates/cpu/src/fixture.rs".to_string(),
            include_str!("fixtures/r5_caller.rs").to_string(),
        ),
        (
            "crates/mem/src/lib.rs".to_string(),
            include_str!("fixtures/r5_callee_dirty.rs").to_string(),
        ),
    ];
    let r2_only = LintOptions {
        rule_mask: hbat_lint::diag::all_rules_mask() & !Rule::HotProp.bit(),
    };
    let d = lint_workspace(&files, &r2_only);
    assert!(d.is_empty(), "R2 alone must miss the callee: {d:#?}");
    let d = lint_workspace(&files, &LintOptions::default());
    assert_eq!(count(&d, Rule::HotProp), 1, "R5 must catch it: {d:#?}");
}

#[test]
fn r6_clean_fixture_passes() {
    let d = lint_one(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/r6_clean.rs"),
    );
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn r6_dirty_fixture_fails() {
    let d = lint_one(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/r6_dirty.rs"),
    );
    assert_eq!(count(&d, Rule::PanicReach), 1, "{d:#?}");
    assert!(
        d[0].message
            .contains("Engine::run -> step_all -> translate_one"),
        "two-hop witness chain: {d:#?}"
    );
}

/// Findings (and therefore the written baseline) must not depend on the
/// order files arrive from the walker — CI diffs baselines textually.
#[test]
fn findings_are_independent_of_file_order() {
    let mut files = vec![
        (
            "crates/cpu/src/fixture.rs".to_string(),
            include_str!("fixtures/r5_caller.rs").to_string(),
        ),
        (
            "crates/mem/src/lib.rs".to_string(),
            include_str!("fixtures/r5_callee_dirty.rs").to_string(),
        ),
        (
            "crates/isa/src/fixture.rs".to_string(),
            include_str!("fixtures/r3_dirty.rs").to_string(),
        ),
        (
            "crates/core/src/fixture.rs".to_string(),
            include_str!("fixtures/r1_dirty.rs").to_string(),
        ),
    ];
    let golden = lint_workspace(&files, &LintOptions::default());
    assert!(!golden.is_empty());
    files.reverse();
    assert_eq!(lint_workspace(&files, &LintOptions::default()), golden);
    files.swap(0, 2);
    files.swap(1, 3);
    assert_eq!(lint_workspace(&files, &LintOptions::default()), golden);
}

#[test]
fn dirty_fixtures_pass_with_their_rule_disabled() {
    for (rel, src, rule) in [
        (
            "crates/core/src/fixture.rs",
            include_str!("fixtures/r1_dirty.rs"),
            Rule::Determinism,
        ),
        (
            "crates/cpu/src/fixture.rs",
            include_str!("fixtures/r2_dirty.rs"),
            Rule::HotPath,
        ),
        (
            "crates/isa/src/fixture.rs",
            include_str!("fixtures/r3_dirty.rs"),
            Rule::PanicPolicy,
        ),
        (
            "crates/cpu/src/fixture.rs",
            include_str!("fixtures/r6_dirty.rs"),
            Rule::PanicReach,
        ),
    ] {
        let opts = LintOptions {
            rule_mask: hbat_lint::diag::all_rules_mask() & !rule.bit(),
        };
        let d = lint_workspace(&[(rel.to_string(), src.to_string())], &opts);
        assert!(
            d.iter().all(|d| d.rule != rule),
            "{rule:?} still reported: {d:#?}"
        );
    }
}
