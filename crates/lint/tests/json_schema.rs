//! The machine-readable surfaces are contracts: `--json` findings and
//! `--graph` dumps are parsed by CI and external tooling. A golden test
//! pins the findings schema byte-for-byte; a strict validator proves
//! every emitted document is well-formed JSON; and the graph dump must
//! cover every workspace crate.

use std::path::Path;

use hbat_lint::diag::{render_json, Diagnostic, Rule};
use hbat_lint::graph::render_graph_json;
use hbat_lint::{analyze_workspace, walk};

// ---- a strict, dependency-free JSON validator --------------------------

/// Validates that `s` is exactly one JSON value (RFC 8259 subset: no
/// trailing garbage, strict literals). Returns the error position.
fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(*i),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(*i);
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            0x00..=0x1f => return Err(*i),
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while b
        .get(*i)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    if *i == start {
        Err(start)
    } else {
        Ok(())
    }
}

fn assert_valid(s: &str) {
    if let Err(pos) = validate_json(s) {
        let lo = pos.saturating_sub(40);
        let hi = (pos + 40).min(s.len());
        panic!("invalid JSON at byte {pos}: …{}…", &s[lo..hi]);
    }
}

// ---- golden findings schema --------------------------------------------

#[test]
fn findings_json_matches_the_golden_schema() {
    let findings = vec![
        (
            Diagnostic {
                rule: Rule::HotProp,
                file: "crates/mem/src/lib.rs".into(),
                line: 7,
                message: "allocation in `build_index`".into(),
            },
            true,
        ),
        (
            Diagnostic {
                rule: Rule::PanicReach,
                file: "crates/cpu/src/engine.rs".into(),
                line: 42,
                message: "say \"no\"".into(),
            },
            false,
        ),
    ];
    let expected = "{\n  \"findings\": [\n    \
         {\"rule\": \"R5\", \"name\": \"hot-prop\", \"file\": \"crates/mem/src/lib.rs\", \
         \"line\": 7, \"message\": \"allocation in `build_index`\", \"new\": true},\n    \
         {\"rule\": \"R6\", \"name\": \"panic-reach\", \"file\": \"crates/cpu/src/engine.rs\", \
         \"line\": 42, \"message\": \"say \\\"no\\\"\", \"new\": false}\n  \
         ],\n  \"total\": 2,\n  \"new\": 1\n}";
    let got = render_json(&findings);
    assert_eq!(got, expected, "schema drift — update consumers first");
    assert_valid(&got);
}

#[test]
fn empty_findings_json_is_valid() {
    assert_valid(&render_json(&[]));
}

// ---- graph dump over the real workspace --------------------------------

#[test]
fn graph_json_is_valid_and_covers_every_workspace_crate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf();
    let files = walk::collect_files(&root).expect("walk workspace");
    let ws = analyze_workspace(&files);
    let json = render_graph_json(&ws.files, &ws.graph, &ws.propagation);
    assert_valid(&json);

    // Every crates/<name> directory must appear in the "crates" list
    // under its import name.
    let mut missing = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let name = entry.expect("dir entry").file_name();
        let import = format!("\"hbat_{}\"", name.to_string_lossy());
        if !json.contains(&import) {
            missing.push(import);
        }
    }
    assert!(
        missing.is_empty(),
        "crates absent from --graph: {missing:?}"
    );

    // The engine entry points must be present and panic-reachable, and
    // the graph must be non-trivial.
    assert!(json.contains("hbat_cpu::engine::Engine::run"));
    assert!(json.contains("\"schema\": 1"));
    let node_count = json.matches("\"crate\":").count();
    assert!(node_count > 100, "suspiciously small graph: {node_count}");
}
