//! Property tests: the lexer must terminate without panicking on
//! arbitrary input, and its line numbers must stay consistent with the
//! source. Lint tools see half-saved buffers, merge conflicts, and
//! generated code — "degrade gracefully" has to hold for *any* bytes.

use proptest::prelude::*;

use hbat_lint::lexer::{lex, TokenKind};

/// Every lexer invariant worth checking on arbitrary input.
fn check_invariants(src: &str) -> Result<(), TestCaseError> {
    let toks = lex(src);
    let total_lines = src.lines().count().max(1) as u32;
    let mut prev_line = 1u32;
    for t in &toks {
        prop_assert!(t.line >= 1, "line numbers are 1-based: {t:?}");
        prop_assert!(
            t.line <= total_lines,
            "token line {} beyond the {} source lines",
            t.line,
            total_lines
        );
        prop_assert!(
            t.line >= prev_line,
            "token lines must be non-decreasing: {} after {}",
            t.line,
            prev_line
        );
        prev_line = t.line;
        if t.kind == TokenKind::Ident {
            prop_assert!(!t.text.is_empty(), "idents carry their lexeme");
        }
    }
    Ok(())
}

/// Fragments that exercise every branch: literal prefixes, comment
/// openers, escapes, and plain code, concatenated in random orders.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "r#\"raw\"#",
    "r##\"",
    "br#",
    "b'",
    "b\"bytes",
    "\"open",
    "\\\n",
    "'a",
    "'x'",
    "'\\u{41}'",
    "'\\x",
    "/* nest /*",
    "*/",
    "// line",
    "1.5e-3",
    "0x1F_u64",
    "1..5",
    "r#type",
    "r#",
    "#[derive(Debug)]",
    "\n",
    "\u{1F600}",
    "█",
    "\\",
    "\"",
    "'",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded — the walker reads files the
    /// same way) never panic the lexer, and it always terminates.
    #[test]
    fn lexer_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_invariants(&src)?;
    }

    /// Random concatenations of tricky Rust fragments — denser coverage
    /// of the literal/comment branches than uniform bytes reach.
    #[test]
    fn lexer_survives_adversarial_fragments(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..24),
        sep in 0usize..3,
    ) {
        let sep = [" ", "", "\n"][sep];
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(sep);
        check_invariants(&src)?;
    }
}
