//! R5 fixture callee (dirty): an allocating helper in a different crate
//! than the hot caller. No `hbat-lint: hot` marker appears in this file,
//! so the intraprocedural R2 provably cannot flag it — only R5's
//! propagation through the call graph can.

pub fn build_index(i: usize) -> usize {
    let v: Vec<usize> = (0..i).collect();
    v.len()
}
