//! R3 clean: fallible APIs, documented panics, and reasoned suppressions.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

/// Returns the element at `i`.
///
/// # Panics
///
/// Panics if `i` is out of bounds.
pub fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

// hbat-lint: allow(panic) the mask keeps every index in bounds
pub fn masked(xs: &[u32; 8], i: usize) -> u32 {
    xs[i % 8]
}

fn private_helper(xs: &[u32], i: usize) -> u32 {
    // Computed indexing in private fns is the caller's contract to keep.
    xs[i % xs.len().max(1)]
}

pub fn sum(xs: &[u32]) -> u32 {
    xs.iter().sum::<u32>() + private_helper(xs, 0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
