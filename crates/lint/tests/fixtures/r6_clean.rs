//! R6 fixture (clean): the same reachable call chain with every panic
//! site either documented (`# Panics`), suppressed with a reasoned
//! allow, or rewritten to return an `Option`.

const LOOKUP: [u64; 4] = [0, 1, 2, 3];

struct Engine;

impl Engine {
    pub fn run(&mut self) -> u64 {
        step_all(3).unwrap_or(0)
    }
}

fn step_all(i: usize) -> Option<u64> {
    checked(i).map(|v| v + documented(i) + allowed(i))
}

fn checked(i: usize) -> Option<u64> {
    LOOKUP.get(i).copied()
}

/// # Panics
/// If `i` is out of range — callers index within `LOOKUP` by contract.
fn documented(i: usize) -> u64 {
    LOOKUP[i]
}

fn allowed(i: usize) -> u64 {
    // hbat-lint: allow(panic-reach) index clamped by every caller
    LOOKUP[i.min(3)]
}
