//! R2 dirty: allocation APIs inside the hot region.
pub struct Engine {
    queue: Vec<u64>,
}

impl Engine {
    // hbat-lint: hot — the drain loop
    pub fn drain(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(v) = self.queue.pop() {
            out.push(format!("drained {v}"));
        }
        let copy = self.queue.to_vec();
        drop(copy);
        out
    }
    // hbat-lint: cold
}
