//! R4 fixture shim: a miniature offline stand-in crate.
pub struct SmallRng {
    state: u64,
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs;

pub use distributions::{Distribution, Standard};

mod distributions {
    pub struct Standard;
    pub trait Distribution<T> {}
}

macro_rules! shim_only {
    () => {};
}
