//! R5 fixture caller: a hot region whose loop calls into another crate.
//! The caller itself is allocation-free — everything R2 can see is
//! clean; whether the workspace passes depends entirely on the callee.

use hbat_mem::build_index;

pub fn scan_loop(n: usize) -> usize {
    let mut acc = 0;
    // hbat-lint: hot — the per-access loop
    for i in 0..n {
        acc += build_index(i);
    }
    // hbat-lint: cold
    acc
}
