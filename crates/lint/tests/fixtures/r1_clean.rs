//! R1 clean: ordered containers and sorted hash output, no wall clocks.
use std::collections::{BTreeMap, BTreeSet, HashMap};

pub struct Counts {
    by_page: BTreeMap<u64, u64>,
    fast: HashMap<u64, u64>,
}

impl Counts {
    pub fn bump(&mut self, page: u64) {
        *self.by_page.entry(page).or_insert(0) += 1;
        *self.fast.entry(page).or_insert(0) += 1;
    }

    pub fn report(&self) -> Vec<(u64, u64)> {
        // Iterating the BTreeMap is deterministic.
        self.by_page.iter().map(|(&k, &v)| (k, v)).collect()
    }

    pub fn pages(&self) -> BTreeSet<u64> {
        let mut out: Vec<u64> =
            self.fast.keys().copied().collect(); // hbat-lint: allow(determinism) sorted by the BTreeSet below
        out.sort_unstable();
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    // Hash containers in test code are fine.
    use std::collections::HashSet;
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_allowed() {
        let _ = Instant::now();
        let _ = HashSet::<u32>::new();
    }
}
