//! R1 dirty: hash iteration feeding output and wall clocks in a sim crate.
use std::collections::HashMap;
use std::time::Instant;

pub struct Counts {
    by_page: HashMap<u64, u64>,
}

impl Counts {
    pub fn report(&self) -> Vec<(u64, u64)> {
        // Hash iteration order leaks straight into the report.
        self.by_page.iter().map(|(&k, &v)| (k, v)).collect()
    }

    pub fn timed_report(&self) -> Vec<(u64, u64)> {
        let _t0 = Instant::now();
        let mut out = Vec::new();
        for kv in &self.by_page {
            out.push((*kv.0, *kv.1));
        }
        out
    }
}
