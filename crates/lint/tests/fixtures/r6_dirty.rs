//! R6 fixture (dirty): a panic site two hops below `Engine::run`, with
//! no `# Panics` doc and no allow — R3 never ran on this crate, but the
//! reachability pass must still flag it.

const LOOKUP: [u64; 4] = [0, 1, 2, 3];

struct Engine;

impl Engine {
    pub fn run(&mut self) -> u64 {
        step_all(3)
    }
}

fn step_all(i: usize) -> u64 {
    translate_one(i)
}

fn translate_one(i: usize) -> u64 {
    LOOKUP[i]
}
