//! R3 dirty: undocumented panics in library code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

pub fn config(name: &str) -> u32 {
    match name {
        "ports" => 4,
        other => panic!("unknown config {other}"),
    }
}

pub fn not_done() -> u32 {
    todo!("implement me")
}

pub fn suppressed_without_reason(x: Option<u32>) -> u32 {
    x.expect("present") // hbat-lint: allow(panic)
}
