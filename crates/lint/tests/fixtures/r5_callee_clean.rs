//! R5 fixture callee (clean): the same helper with its one deliberate
//! allocation suppressed at the callee — the escape hatch works from
//! the far side of the crate boundary.

pub fn build_index(i: usize) -> usize {
    // hbat-lint: allow(hot-prop) one-time setup, amortised over the scan
    let v: Vec<usize> = (0..i).collect();
    v.len()
}
