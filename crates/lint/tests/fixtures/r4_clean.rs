//! R4 clean: every shim import exists in the shim's source.
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng as Seed};

pub fn roll(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let _ = Seed::seed_from_u64(seed);
    rng.next_u64()
}
