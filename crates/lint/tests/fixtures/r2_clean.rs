//! R2 clean: allocation before the hot region, none inside it.
pub struct Engine {
    queue: Vec<u64>,
    scratch: Vec<u64>,
}

impl Engine {
    pub fn new(capacity: usize) -> Self {
        // Allocation is fine outside the hot region.
        Engine {
            queue: Vec::with_capacity(capacity),
            scratch: vec![0; capacity],
        }
    }

    // hbat-lint: hot — the drain loop reuses preallocated buffers
    pub fn drain(&mut self) -> u64 {
        let mut sum = 0;
        while let Some(v) = self.queue.pop() {
            if let Some(slot) = self.scratch.get_mut(0) {
                *slot = v;
            }
            sum += v;
        }
        sum
    }
    // hbat-lint: cold

    pub fn refill(&mut self, items: &[u64]) {
        self.queue.extend_from_slice(items);
    }
}
