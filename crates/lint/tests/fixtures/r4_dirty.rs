//! R4 dirty: imports that drifted away from the shim's exports.
use rand::rngs::SmallRng;
use rand::thread_rng;
use rand::{Rng, WeightedIndex};

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
