//! Region analysis: which tokens are test code, which are inside a
//! documented-panic function, which lines are hot, and which findings
//! are suppressed.
//!
//! The pass walks the token stream once, maintaining a stack of brace
//! regions. Attributes (`#[cfg(test)]`, `#[test]`, `#[bench]`), doc
//! comments containing `# Panics`, and `// hbat-lint: allow(...)`
//! comments arm *pending* flags that attach to the next `{` region and
//! are cancelled by a `;` (a statement that never opened a block).
//!
//! Directive syntax (plain `//` or `/* */` comments only — doc comments
//! merely *describing* the syntax are never parsed as directives; the
//! marker must open the comment):
//!
//! * `// hbat-lint: hot` — start of a hot region (R2 applies) until
//!   `// hbat-lint: cold` or end of file;
//! * `// hbat-lint: allow(rule, …) reason` — suppresses the named rules
//!   on this line (trailing comment), on the next line (own-line
//!   comment), or for the whole following block (own-line comment
//!   immediately before an `fn`/`mod`/`impl`). A missing reason is
//!   itself reported.

use std::collections::BTreeMap;

use crate::diag::Rule;
use crate::lexer::{Token, TokenKind};

/// Per-token context flags, parallel to the token stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokFlags {
    /// Inside `#[cfg(test)]` / `#[test]` / `#[bench]` code.
    pub test: bool,
    /// Inside a function whose doc comment has a `# Panics` section.
    pub panic_doc: bool,
    /// Inside a `pub fn` body (closures included).
    pub pub_fn: bool,
    /// Region-level suppression mask (see [`Rule::bit`]).
    pub allow_mask: u8,
}

/// The computed context of one file.
#[derive(Debug, Default)]
pub struct FileContext {
    /// Flags for each token, same indices as the lexed stream.
    pub flags: Vec<TokFlags>,
    /// Inclusive hot line ranges.
    hot: Vec<(u32, u32)>,
    /// Line → suppression mask from `allow(...)` comments.
    line_allows: BTreeMap<u32, u8>,
    /// Malformed directives: (line, problem).
    pub directive_problems: Vec<(u32, String)>,
}

impl FileContext {
    /// Is `line` inside a `// hbat-lint: hot` region?
    pub fn hot_line(&self, line: u32) -> bool {
        self.hot.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Is `rule` suppressed for the token at `idx` (line or region)?
    pub fn allowed(&self, idx: usize, line: u32, rule: Rule) -> bool {
        self.allow_mask_at(idx, line) & rule.bit() != 0
    }

    /// The combined (region | line) suppression mask for a token.
    pub fn allow_mask_at(&self, idx: usize, line: u32) -> u8 {
        let region = self.flags.get(idx).map(|f| f.allow_mask).unwrap_or(0);
        let by_line = self.line_allows.get(&line).copied().unwrap_or(0);
        region | by_line
    }

    /// Inclusive hot line ranges of the file.
    pub fn hot_ranges(&self) -> &[(u32, u32)] {
        &self.hot
    }

    /// Computes the context of a lexed file.
    pub fn of(tokens: &[Token]) -> FileContext {
        let mut ctx = FileContext::default();
        let mut stack: Vec<TokFlags> = vec![TokFlags::default()];
        // Pending flags armed by attributes/docs/comments, attached to
        // the next `{` and cancelled by `;`.
        let mut pend_test = false;
        let mut pend_panic_doc = false;
        let mut pend_allow: u8 = 0;
        let mut pend_pub = false;
        let mut pend_fn = false;
        let mut hot_open: Option<u32> = None;
        // Tokens consumed by attribute lookahead (so `;`/`{` inside an
        // attribute body never interact with the pendings).
        let mut skip_until = 0usize;

        for (i, t) in tokens.iter().enumerate() {
            ctx.flags
                .push(*stack.last().unwrap_or(&TokFlags::default()));

            if t.is_comment() {
                let text = &t.text;
                let is_doc = text.starts_with("///")
                    || text.starts_with("//!")
                    || text.starts_with("/**")
                    || text.starts_with("/*!");
                if is_doc && text.contains("# Panics") {
                    pend_panic_doc = true;
                }
                let body = text
                    .trim_start_matches(['/', '*'])
                    .trim_start()
                    .trim_end_matches(['/', '*'])
                    .trim_end();
                if let Some(rest) = (!is_doc).then(|| body.strip_prefix("hbat-lint:")).flatten() {
                    let rest = rest.trim();
                    if rest == "hot" || rest.starts_with("hot ") {
                        hot_open = Some(t.line);
                    } else if rest.starts_with("cold") || rest.starts_with("end-hot") {
                        if let Some(start) = hot_open.take() {
                            ctx.hot.push((start, t.line));
                        }
                    } else if let Some(args) = rest.strip_prefix("allow(") {
                        match args.split_once(')') {
                            Some((list, reason)) => {
                                let mut mask = 0u8;
                                for name in list.split(',') {
                                    match Rule::parse_mask(name) {
                                        Some(bit) => mask |= bit,
                                        None => ctx.directive_problems.push((
                                            t.line,
                                            format!("unknown rule {:?} in allow()", name.trim()),
                                        )),
                                    }
                                }
                                if reason.trim().is_empty() {
                                    ctx.directive_problems.push((
                                        t.line,
                                        "allow() without a reason — every suppression must say why"
                                            .to_string(),
                                    ));
                                }
                                *ctx.line_allows.entry(t.line).or_default() |= mask;
                                if t.first_on_line {
                                    *ctx.line_allows.entry(t.line + 1).or_default() |= mask;
                                    pend_allow |= mask;
                                }
                            }
                            None => ctx
                                .directive_problems
                                .push((t.line, "malformed allow() directive".to_string())),
                        }
                    } else {
                        ctx.directive_problems
                            .push((t.line, format!("unknown hbat-lint directive {rest:?}")));
                    }
                }
                continue;
            }

            if i < skip_until {
                continue;
            }

            match t.kind {
                TokenKind::Punct if t.is_punct('#') => {
                    // Attribute: scan the bracketed group.
                    let mut j = i + 1;
                    // Inner attribute `#![...]`.
                    if tokens.get(j).is_some_and(|n| n.is_punct('!')) {
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|n| n.is_punct('[')) {
                        let mut depth = 0i32;
                        let mut idents: Vec<&str> = Vec::new();
                        let mut end = j;
                        for (k, a) in tokens.iter().enumerate().skip(j) {
                            match a.kind {
                                TokenKind::Punct if a.is_punct('[') => depth += 1,
                                TokenKind::Punct if a.is_punct(']') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        end = k;
                                        break;
                                    }
                                }
                                TokenKind::Ident => idents.push(&a.text),
                                _ => {}
                            }
                        }
                        let is_test_attr = match idents.first().copied() {
                            Some("test") | Some("bench") => true,
                            Some("cfg") | Some("cfg_attr") => idents.contains(&"test"),
                            _ => false,
                        };
                        if is_test_attr {
                            pend_test = true;
                        }
                        skip_until = end + 1;
                    }
                }
                TokenKind::Ident if t.text == "pub" => pend_pub = true,
                TokenKind::Ident if t.text == "fn" => pend_fn = true,
                TokenKind::Punct if t.is_punct('{') => {
                    let parent = *stack.last().unwrap_or(&TokFlags::default());
                    let region = TokFlags {
                        test: parent.test || pend_test,
                        panic_doc: parent.panic_doc || (pend_fn && pend_panic_doc),
                        pub_fn: if pend_fn { pend_pub } else { parent.pub_fn },
                        allow_mask: parent.allow_mask | pend_allow,
                    };
                    stack.push(region);
                    // The `{` itself belongs to the region it opens.
                    if let Some(f) = ctx.flags.last_mut() {
                        *f = region;
                    }
                    (pend_test, pend_panic_doc, pend_allow) = (false, false, 0);
                    (pend_pub, pend_fn) = (false, false);
                }
                TokenKind::Punct if t.is_punct('}') && stack.len() > 1 => {
                    stack.pop();
                }
                TokenKind::Punct if t.is_punct(';') => {
                    (pend_test, pend_panic_doc, pend_allow) = (false, false, 0);
                    (pend_pub, pend_fn) = (false, false);
                }
                _ => {}
            }
        }
        if let Some(start) = hot_open {
            ctx.hot.push((start, u32::MAX));
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn flags_at(src: &str, ident: &str) -> TokFlags {
        let toks = lex(src);
        let ctx = FileContext::of(&toks);
        let idx = toks
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("no token {ident}"));
        ctx.flags[idx]
    }

    #[test]
    fn cfg_test_mod_is_test_code() {
        let src = "fn lib() { body(); }\n#[cfg(test)]\nmod tests { fn t() { inner(); } }";
        assert!(!flags_at(src, "body").test);
        assert!(flags_at(src, "inner").test);
    }

    #[test]
    fn test_attr_fn_is_test_code() {
        let src = "#[test]\nfn check() { probe(); }\nfn lib() { other(); }";
        assert!(flags_at(src, "probe").test);
        assert!(!flags_at(src, "other").test);
    }

    #[test]
    fn cfg_test_use_does_not_leak() {
        // The `;` cancels the pending attribute before any block opens.
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }";
        assert!(!flags_at(src, "body").test);
    }

    #[test]
    fn panics_doc_marks_fn_region() {
        let src = "/// Does things.\n///\n/// # Panics\n/// When x.\npub fn f() { danger(); }\nfn g() { safe(); }";
        assert!(flags_at(src, "danger").panic_doc);
        assert!(!flags_at(src, "safe").panic_doc);
    }

    #[test]
    fn pub_fn_and_private_fn() {
        let src = "pub fn api() { a(); let c = |x| { b(x) }; }\nfn helper() { h(); }";
        assert!(flags_at(src, "a").pub_fn);
        assert!(flags_at(src, "b").pub_fn, "closures inherit the fn");
        assert!(!flags_at(src, "h").pub_fn);
    }

    #[test]
    fn hot_regions_by_line() {
        let src = "fn a() {}\n// hbat-lint: hot\nfn b() {}\n// hbat-lint: cold\nfn c() {}";
        let ctx = FileContext::of(&lex(src));
        assert!(!ctx.hot_line(1));
        assert!(ctx.hot_line(3));
        assert!(!ctx.hot_line(5));
    }

    #[test]
    fn hot_region_extends_to_eof_when_unclosed() {
        let src = "// hbat-lint: hot\nfn b() {}";
        let ctx = FileContext::of(&lex(src));
        assert!(ctx.hot_line(2));
        assert!(ctx.hot_line(9999));
    }

    #[test]
    fn trailing_allow_suppresses_its_line() {
        let src = "fn f() { x.unwrap(); } // hbat-lint: allow(panic) checked above";
        let toks = lex(src);
        let ctx = FileContext::of(&toks);
        assert!(ctx.allowed(0, 1, Rule::PanicPolicy));
        assert!(!ctx.allowed(0, 2, Rule::PanicPolicy));
    }

    #[test]
    fn own_line_allow_covers_next_line_and_following_block() {
        let src = "// hbat-lint: allow(panic) indices masked by construction\npub fn f() {\n    deep();\n}";
        let toks = lex(src);
        let ctx = FileContext::of(&toks);
        let idx = toks.iter().position(|t| t.is_ident("deep")).unwrap();
        assert!(ctx.allowed(idx, toks[idx].line, Rule::PanicPolicy));
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "fn f() {} // hbat-lint: allow(panic)";
        let ctx = FileContext::of(&lex(src));
        assert_eq!(ctx.directive_problems.len(), 1);
        assert!(ctx.directive_problems[0].1.contains("reason"));
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// hbat-lint: allow(bogus) whatever\nfn f() {}";
        let ctx = FileContext::of(&lex(src));
        assert!(ctx.directive_problems[0].1.contains("unknown rule"));
    }
}
