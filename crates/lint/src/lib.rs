//! `hbat-lint`: workspace-native static analysis for the HBAT simulator.
//!
//! Six rules, each toggleable (see `DESIGN.md` § "Static analysis" and
//! § "Interprocedural lint"):
//!
//! * **R1 determinism** — no hash-ordered iteration feeding output, no
//!   wall clocks in simulation crates;
//! * **R2 hot-path hygiene** — no allocation APIs inside
//!   `// hbat-lint: hot` regions;
//! * **R3 panic policy** — no undocumented panics in library code of the
//!   panic-policy crates;
//! * **R4 shim drift** — every import from a shimmed crate must exist in
//!   the shim's source;
//! * **R5 hot propagation** — no allocation APIs in any function
//!   transitively reachable from a hot region, across files and crates;
//! * **R6 panic reachability** — no undocumented panic sites in any
//!   function transitively reachable from the engine hot entry points
//!   (`Engine::run`, `Machine::step`).
//!
//! The tool is deliberately dependency-free: it lexes Rust with its own
//! lightweight lexer ([`lexer`]), parses items with its own item-level
//! parser ([`parse`]), and resolves calls with a pragmatic heuristic
//! ([`graph`]) — no `syn`. That keeps it honest about what it can know
//! (suppressions and the explicit ambiguity bucket exist for the rest)
//! and buildable in an offline environment.

pub mod baseline;
pub mod context;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod propagate;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;

use diag::{Diagnostic, Rule};
use rules::{classify, collect_shim_imports, lint_file, shim_drift, shim_exports, LintOptions};

/// The parsed workspace, its call graph, and the propagation results —
/// everything `--graph` dumps and the interprocedural rules consume.
pub struct WorkspaceAnalysis {
    pub files: Vec<parse::FileInfo>,
    pub graph: graph::CallGraph,
    pub propagation: propagate::Propagation,
}

/// Parses the workspace and runs both propagation passes.
pub fn analyze_workspace(files: &[(String, String)]) -> WorkspaceAnalysis {
    let parsed = parse::parse_workspace(files);
    let g = graph::build(&parsed);
    let p = propagate::propagate(&parsed, &g);
    WorkspaceAnalysis {
        files: parsed,
        graph: g,
        propagation: p,
    }
}

/// Lints a whole workspace given `(relative path, contents)` pairs.
/// Shim sources are the reference for R4 and exempt from R1–R3;
/// R5/R6 run over the interprocedural call graph of the non-shim files.
pub fn lint_workspace(files: &[(String, String)], opts: &LintOptions) -> Vec<Diagnostic> {
    // Group shim sources by crate directory name.
    let mut shim_sources: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    for (rel, src) in files {
        let class = classify(rel);
        if class.shim {
            if let Some(root) = class.crate_dir {
                shim_sources.entry(root).or_default().push(src.as_str());
            }
        }
    }
    let exports: BTreeMap<String, std::collections::BTreeSet<String>> = shim_sources
        .iter()
        .map(|(root, sources)| (root.clone(), shim_exports(sources)))
        .collect();

    let run_r4 = opts.rule_mask & diag::Rule::ShimDrift.bit() != 0;
    let mut out = Vec::new();
    for (rel, src) in files {
        if classify(rel).shim {
            continue;
        }
        out.extend(lint_file(rel, src, opts));
        if run_r4 {
            let imports = collect_shim_imports(src);
            out.extend(shim_drift(rel, &imports, &exports));
        }
    }

    let run_r5 = opts.rule_mask & Rule::HotProp.bit() != 0;
    let run_r6 = opts.rule_mask & Rule::PanicReach.bit() != 0;
    if run_r5 || run_r6 {
        let ws = analyze_workspace(files);
        if run_r5 {
            out.extend(propagate::rule_hot_prop(
                &ws.files,
                &ws.graph,
                &ws.propagation,
            ));
        }
        if run_r6 {
            out.extend(propagate::rule_panic_reach(
                &ws.files,
                &ws.graph,
                &ws.propagation,
            ));
        }
    }

    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Rule;

    #[test]
    fn workspace_run_combines_rules_and_skips_shims() {
        let files = vec![
            (
                "shims/rand/src/lib.rs".to_string(),
                // unwrap in a shim must not be flagged
                "pub struct SmallRng;\npub fn seed() { None::<u32>.unwrap(); }\n".to_string(),
            ),
            (
                "crates/core/src/x.rs".to_string(),
                "use rand::SmallRng;\nuse rand::Missing;\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"
                    .to_string(),
            ),
        ];
        let d = lint_workspace(&files, &LintOptions::default());
        assert!(d
            .iter()
            .any(|d| d.rule == Rule::ShimDrift && d.message.contains("Missing")));
        assert!(!d.iter().any(|d| d.message.contains("SmallRng")));
        assert!(d
            .iter()
            .any(|d| d.rule == Rule::PanicPolicy && d.file.contains("core")));
        assert!(!d.iter().any(|d| d.file.starts_with("shims/")));
    }

    #[test]
    fn interprocedural_rules_fire_through_lint_workspace() {
        let files = vec![
            (
                "crates/cpu/src/engine.rs".to_string(),
                "use hbat_mem::grow;\n// hbat-lint: hot\nfn scan() { grow(); }\n// hbat-lint: cold\n"
                    .to_string(),
            ),
            (
                "crates/mem/src/lib.rs".to_string(),
                "pub fn grow() { let v: Vec<u32> = Vec::new(); let _ = v; }\n".to_string(),
            ),
        ];
        let d = lint_workspace(&files, &LintOptions::default());
        assert!(
            d.iter().any(|d| d.rule == Rule::HotProp),
            "R5 must cross the crate boundary: {d:#?}"
        );
        // And toggling R5 off silences it.
        let opts = LintOptions {
            rule_mask: diag::all_rules_mask() & !Rule::HotProp.bit(),
        };
        let d = lint_workspace(&files, &opts);
        assert!(d.iter().all(|d| d.rule != Rule::HotProp), "{d:#?}");
    }
}
