//! `hbat-lint`: workspace-native static analysis for the HBAT simulator.
//!
//! Four rules, each toggleable (see `DESIGN.md` § "Static analysis"):
//!
//! * **R1 determinism** — no hash-ordered iteration feeding output, no
//!   wall clocks in simulation crates;
//! * **R2 hot-path hygiene** — no allocation APIs inside
//!   `// hbat-lint: hot` regions;
//! * **R3 panic policy** — no undocumented panics in library code of the
//!   panic-policy crates;
//! * **R4 shim drift** — every import from a shimmed crate must exist in
//!   the shim's source.
//!
//! The tool is deliberately dependency-free: it lexes Rust with its own
//! lightweight lexer ([`lexer`]) and matches token sequences, not an AST.
//! That keeps it honest about what it can know (suppressions exist for
//! the rest) and buildable in an offline environment.

pub mod baseline;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;

use diag::Diagnostic;
use rules::{classify, collect_shim_imports, lint_file, shim_drift, shim_exports, LintOptions};

/// Lints a whole workspace given `(relative path, contents)` pairs.
/// Shim sources are the reference for R4 and exempt from R1–R3.
pub fn lint_workspace(files: &[(String, String)], opts: &LintOptions) -> Vec<Diagnostic> {
    // Group shim sources by crate directory name.
    let mut shim_sources: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    for (rel, src) in files {
        let class = classify(rel);
        if class.shim {
            if let Some(root) = class.crate_dir {
                shim_sources.entry(root).or_default().push(src.as_str());
            }
        }
    }
    let exports: BTreeMap<String, std::collections::BTreeSet<String>> = shim_sources
        .iter()
        .map(|(root, sources)| (root.clone(), shim_exports(sources)))
        .collect();

    let run_r4 = opts.rule_mask & diag::Rule::ShimDrift.bit() != 0;
    let mut out = Vec::new();
    for (rel, src) in files {
        if classify(rel).shim {
            continue;
        }
        out.extend(lint_file(rel, src, opts));
        if run_r4 {
            let imports = collect_shim_imports(src);
            out.extend(shim_drift(rel, &imports, &exports));
        }
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Rule;

    #[test]
    fn workspace_run_combines_rules_and_skips_shims() {
        let files = vec![
            (
                "shims/rand/src/lib.rs".to_string(),
                // unwrap in a shim must not be flagged
                "pub struct SmallRng;\npub fn seed() { None::<u32>.unwrap(); }\n".to_string(),
            ),
            (
                "crates/core/src/x.rs".to_string(),
                "use rand::SmallRng;\nuse rand::Missing;\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"
                    .to_string(),
            ),
        ];
        let d = lint_workspace(&files, &LintOptions::default());
        assert!(d
            .iter()
            .any(|d| d.rule == Rule::ShimDrift && d.message.contains("Missing")));
        assert!(!d.iter().any(|d| d.message.contains("SmallRng")));
        assert!(d
            .iter()
            .any(|d| d.rule == Rule::PanicPolicy && d.file.contains("core")));
        assert!(!d.iter().any(|d| d.file.starts_with("shims/")));
    }
}
