//! Workspace file discovery: every `.rs` file under the root, skipping
//! build output, hidden directories, and lint test fixtures.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

/// Collects `(workspace-relative path, contents)` for every `.rs` file,
/// sorted by path. Separators are normalised to `/`.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let contents = fs::read_to_string(&path)?;
                files.push((rel, contents));
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_build_and_fixture_dirs() {
        assert!(skip_dir("target"));
        assert!(skip_dir("fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("crates"));
        assert!(!skip_dir("shims"));
    }
}
