//! The four rules, implemented over the lexed token stream and the
//! region context. See `DESIGN.md` § "Static analysis" for the policy
//! each rule enforces and the rationale.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::FileContext;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Token, TokenKind};

/// Crates whose whole job is producing reports: any hash-ordered
/// container there leaks iteration order into output.
pub const REPORT_CRATES: &[&str] = &["analysis", "stats"];

/// Simulation crates: results must not depend on wall-clock time.
/// `obs` counts as one — its probes run inside the engine's cycle loop,
/// so an observation taken from the clock would both perturb timing and
/// break run-to-run determinism of the recorded streams.
pub const SIM_CRATES: &[&str] = &["core", "cpu", "mem", "isa", "obs"];

/// Crates whose library code must not panic (R3). `bench` joined when
/// it grew the fault-tolerance layer: a sweep that survives panicking
/// *cells* must not itself panic in the surviving paths; `obs` joined
/// with the observability layer: a recorder that panics mid-probe would
/// take the simulation down with it.
pub const PANIC_CRATES: &[&str] = &["isa", "workloads", "stats", "core", "bench", "obs"];

/// Crate names resolved to offline shims (R4).
pub const SHIM_ROOTS: &[&str] = &["rand", "proptest", "criterion", "serde", "serde_derive"];

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Which rules run (bitmask of [`Rule::bit`]).
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    pub rule_mask: u8,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            rule_mask: crate::diag::all_rules_mask(),
        }
    }
}

impl LintOptions {
    fn on(&self, rule: Rule) -> bool {
        self.rule_mask & rule.bit() != 0
    }
}

/// What kind of file a path is, for rule targeting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// `crates/<name>` directory name (`core`, `isa`, …), `suite` for the
    /// root `src/`, or `None` for top-level tests/examples.
    pub crate_dir: Option<String>,
    /// Library code: under `src/`, not a binary target.
    pub library: bool,
    /// Under `shims/` (exempt from R1–R3; the source of truth for R4).
    pub shim: bool,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_bin = |rest: &[&str]| rest.contains(&"bin") || rest == ["main.rs"];
    match parts.as_slice() {
        ["crates", c, "src", rest @ ..] => FileClass {
            crate_dir: Some((*c).to_string()),
            library: !in_bin(rest),
            shim: false,
        },
        ["crates", c, ..] => FileClass {
            crate_dir: Some((*c).to_string()),
            library: false,
            shim: false,
        },
        ["shims", c, ..] => FileClass {
            crate_dir: Some((*c).to_string()),
            library: false,
            shim: true,
        },
        ["src", rest @ ..] => FileClass {
            crate_dir: Some("suite".to_string()),
            library: !in_bin(rest),
            shim: false,
        },
        _ => FileClass {
            crate_dir: None,
            library: false,
            shim: false,
        },
    }
}

/// Lints one non-shim file under rules R1–R3 (plus directive hygiene).
pub fn lint_file(rel: &str, src: &str, opts: &LintOptions) -> Vec<Diagnostic> {
    let class = classify(rel);
    if class.shim {
        return Vec::new();
    }
    let tokens = lex(src);
    let ctx = FileContext::of(&tokens);
    // Indices of non-comment tokens, for sequence matching.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut out = Vec::new();

    // Malformed suppression directives undermine every rule; they are
    // reported under R3 (the policy rule suppressions most often target).
    if opts.on(Rule::PanicPolicy) {
        for (line, problem) in &ctx.directive_problems {
            out.push(Diagnostic {
                rule: Rule::PanicPolicy,
                file: rel.to_string(),
                line: *line,
                message: problem.clone(),
            });
        }
    }

    if opts.on(Rule::Determinism) {
        rule_determinism(rel, &class, &tokens, &ctx, &code, &mut out);
    }
    if opts.on(Rule::HotPath) {
        rule_hot_path(rel, &tokens, &ctx, &code, &mut out);
    }
    if opts.on(Rule::PanicPolicy) {
        rule_panic_policy(rel, &class, &tokens, &ctx, &code, &mut out);
    }

    out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    out.dedup();
    out
}

fn is_hash_type(t: &Token) -> bool {
    t.is_ident("HashMap") || t.is_ident("HashSet")
}

/// R1: determinism.
fn rule_determinism(
    rel: &str,
    class: &FileClass,
    tokens: &[Token],
    ctx: &FileContext,
    code: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    let crate_dir = class.crate_dir.as_deref().unwrap_or("");
    let report_crate = class.library && REPORT_CRATES.contains(&crate_dir);
    let sim_crate = class.library && SIM_CRATES.contains(&crate_dir);
    let mut push = |rule_line: u32, message: String| {
        let d = Diagnostic {
            rule: Rule::Determinism,
            file: rel.to_string(),
            line: rule_line,
            message,
        };
        if !out.contains(&d) {
            out.push(d);
        }
    };

    // R1a: hash containers anywhere in a report-producing crate.
    if report_crate {
        for &i in code {
            let t = &tokens[i];
            if is_hash_type(t) && !ctx.flags[i].test && !ctx.allowed(i, t.line, Rule::Determinism) {
                push(
                    t.line,
                    format!(
                        "`{}` in report-producing crate `{}`: iteration order leaks into output; \
                         use BTreeMap/BTreeSet or sort before emitting",
                        t.text, crate_dir
                    ),
                );
            }
        }
    }

    // R1b: wall-clock time in simulation crates.
    if sim_crate {
        for &i in code {
            let t = &tokens[i];
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && !ctx.flags[i].test
                && !ctx.allowed(i, t.line, Rule::Determinism)
            {
                push(
                    t.line,
                    format!(
                        "`{}` in simulation crate `{}`: timing sources make runs irreproducible",
                        t.text, crate_dir
                    ),
                );
            }
        }
    }

    // R1c: iteration over hash-ordered bindings, any library file (report
    // crates are already covered wholesale by R1a).
    if class.library && !report_crate {
        let mut hash_names: BTreeSet<&str> = BTreeSet::new();
        for w in code.windows(3) {
            let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
            if a.kind == TokenKind::Ident && (b.is_punct(':') || b.is_punct('=')) && is_hash_type(c)
            {
                hash_names.insert(&a.text);
            }
        }
        if hash_names.is_empty() {
            return;
        }
        for (k, w) in code.windows(3).enumerate() {
            let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
            let flagged = if a.kind == TokenKind::Ident
                && hash_names.contains(a.text.as_str())
                && b.is_punct('.')
                && c.kind == TokenKind::Ident
                && HASH_ITER_METHODS.contains(&c.text.as_str())
            {
                Some((w[0], a.text.clone(), c.text.clone()))
            } else if a.is_ident("in") {
                // `for x in &name {` / `for x in name {`
                let mut j = k + 1;
                while j < code.len()
                    && (tokens[code[j]].is_punct('&') || tokens[code[j]].is_ident("mut"))
                {
                    j += 1;
                }
                match (code.get(j), code.get(j + 1)) {
                    (Some(&n), Some(&brace))
                        if tokens[n].kind == TokenKind::Ident
                            && hash_names.contains(tokens[n].text.as_str())
                            && tokens[brace].is_punct('{') =>
                    {
                        Some((n, tokens[n].text.clone(), "for-loop".to_string()))
                    }
                    _ => None,
                }
            } else {
                None
            };
            if let Some((idx, name, how)) = flagged {
                let t = &tokens[idx];
                if !ctx.flags[idx].test && !ctx.allowed(idx, t.line, Rule::Determinism) {
                    push(
                        t.line,
                        format!(
                            "iteration ({how}) over hash-ordered `{name}` is \
                             nondeterministic; sort the results or use BTreeMap/BTreeSet"
                        ),
                    );
                }
            }
        }
    }
}

/// Matches an allocation-API site at code position `k`; returns the API
/// name for the message. Shared by R2 (literal hot regions) and R5
/// (propagated hot functions).
pub(crate) fn alloc_site_hit(tokens: &[Token], code: &[usize], k: usize) -> Option<String> {
    let t = &tokens[code[k]];
    let next = |n: usize| code.get(k + n).map(|&j| &tokens[j]);
    if (t.is_ident("vec") || t.is_ident("format")) && next(1).is_some_and(|n| n.is_punct('!')) {
        Some(format!("{}!", t.text))
    } else if (t.is_ident("Vec") || t.is_ident("Box") || t.is_ident("String"))
        && next(1).is_some_and(|n| n.is_punct(':'))
        && next(2).is_some_and(|n| n.is_punct(':'))
        && next(3)
            .is_some_and(|n| n.is_ident("new") || n.is_ident("from") || n.is_ident("with_capacity"))
    {
        Some(format!(
            "{}::{}",
            t.text,
            next(3).map(|n| n.text.clone()).unwrap_or_default()
        ))
    } else if t.is_punct('.')
        && next(1).is_some_and(|n| {
            n.is_ident("collect")
                || n.is_ident("to_vec")
                || n.is_ident("to_string")
                || n.is_ident("to_owned")
        })
    {
        next(1).map(|n| format!(".{}()", n.text))
    } else {
        None
    }
}

/// Matches a `.unwrap()`/`.expect(` site at code position `k`.
pub(crate) fn unwrap_site_hit(tokens: &[Token], code: &[usize], k: usize) -> Option<String> {
    let t = &tokens[code[k]];
    let next = |n: usize| code.get(k + n).map(|&j| &tokens[j]);
    if t.is_punct('.')
        && next(1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
        && next(2).is_some_and(|n| n.is_punct('('))
    {
        next(1).map(|n| format!("{}()", n.text))
    } else {
        None
    }
}

/// Matches a `panic!`-family macro at code position `k`.
pub(crate) fn panic_macro_hit(tokens: &[Token], code: &[usize], k: usize) -> Option<String> {
    let t = &tokens[code[k]];
    let next = |n: usize| code.get(k + n).map(|&j| &tokens[j]);
    if (t.is_ident("panic")
        || t.is_ident("unreachable")
        || t.is_ident("todo")
        || t.is_ident("unimplemented"))
        && next(1).is_some_and(|n| n.is_punct('!'))
    {
        Some(format!("{}!", t.text))
    } else {
        None
    }
}

/// Matches a computed (non-literal) index expression opening at code
/// position `k` (a `[` with an indexable receiver before it and at
/// least one identifier inside the brackets).
pub(crate) fn computed_index_hit(tokens: &[Token], code: &[usize], k: usize) -> bool {
    let t = &tokens[code[k]];
    if !t.is_punct('[') {
        return false;
    }
    let indexable_receiver = k.checked_sub(1).map(|p| &tokens[code[p]]).is_some_and(|p| {
        (p.kind == TokenKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
            || p.is_punct(')')
            || p.is_punct(']')
    });
    if !indexable_receiver {
        return false;
    }
    let mut depth = 0i32;
    let mut computed = false;
    for &j in &code[k..] {
        let u = &tokens[j];
        if u.is_punct('[') {
            depth += 1;
        } else if u.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if u.kind == TokenKind::Ident || u.kind == TokenKind::StrLit {
            computed = true;
        }
    }
    computed
}

/// R2: allocation APIs inside hot regions.
fn rule_hot_path(
    rel: &str,
    tokens: &[Token],
    ctx: &FileContext,
    code: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if !ctx.hot_line(t.line) || ctx.allowed(i, t.line, Rule::HotPath) {
            continue;
        }
        if let Some(api) = alloc_site_hit(tokens, code, k) {
            out.push(Diagnostic {
                rule: Rule::HotPath,
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "allocation API `{api}` inside a `hbat-lint: hot` region — \
                     the hot loop must stay allocation-free"
                ),
            });
        }
    }
}

/// R3: panic policy in library code of the panic crates.
fn rule_panic_policy(
    rel: &str,
    class: &FileClass,
    tokens: &[Token],
    ctx: &FileContext,
    code: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    let crate_dir = class.crate_dir.as_deref().unwrap_or("");
    if !class.library || !PANIC_CRATES.contains(&crate_dir) {
        return;
    }
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        let f = ctx.flags[i];
        if f.test || f.panic_doc || ctx.allowed(i, t.line, Rule::PanicPolicy) {
            continue;
        }

        // `.unwrap()` / `.expect(` on any receiver.
        if let Some(name) = unwrap_site_hit(tokens, code, k) {
            out.push(Diagnostic {
                rule: Rule::PanicPolicy,
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{name}` in library code of `{crate_dir}`: return a Result, document \
                     the contract with `# Panics`, or add `hbat-lint: allow(panic) <reason>`"
                ),
            });
            continue;
        }

        // panic!-family macros.
        if let Some(mac) = panic_macro_hit(tokens, code, k) {
            out.push(Diagnostic {
                rule: Rule::PanicPolicy,
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{mac}` in library code of `{crate_dir}`: return a Result, document the \
                     contract with `# Panics`, or add `hbat-lint: allow(panic) <reason>`"
                ),
            });
            continue;
        }

        // Computed slice/array indexing in a pub fn without a `# Panics`
        // doc: `xs[i]` panics on bad input and the API does not say so.
        if f.pub_fn && computed_index_hit(tokens, code, k) {
            out.push(Diagnostic {
                rule: Rule::PanicPolicy,
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "computed index in a public function of `{crate_dir}` without a \
                     `# Panics` doc: use get()/get_mut(), document the contract, or \
                     add `hbat-lint: allow(panic) <reason>`"
                ),
            });
        }
    }
}

// ---- R4: shim drift ------------------------------------------------------

/// Collects the exported names of a shim crate from its sources: items
/// declared by keyword, `macro_rules!` names, and everything re-exported
/// through `pub use`.
pub fn shim_exports(sources: &[&str]) -> BTreeSet<String> {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
    ];
    let mut names = BTreeSet::new();
    for src in sources {
        let tokens = lex(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut k = 0usize;
        while k < code.len() {
            let t = code[k];
            if t.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
                if let Some(n) = code.get(k + 1) {
                    if n.kind == TokenKind::Ident {
                        names.insert(n.text.clone());
                    }
                }
            } else if t.is_ident("macro_rules") && code.get(k + 1).is_some_and(|n| n.is_punct('!'))
            {
                if let Some(n) = code.get(k + 2) {
                    names.insert(n.text.clone());
                }
            } else if t.is_ident("pub") && code.get(k + 1).is_some_and(|n| n.is_ident("use")) {
                let mut j = k + 2;
                while j < code.len() && !code[j].is_punct(';') {
                    let u = code[j];
                    if u.kind == TokenKind::Ident
                        && !matches!(u.text.as_str(), "self" | "super" | "crate" | "as")
                    {
                        names.insert(u.text.clone());
                    }
                    j += 1;
                }
                k = j;
            }
            k += 1;
        }
    }
    names
}

/// One `use`d or path-qualified item from a shimmed crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShimImport {
    pub root: String,
    pub item: String,
    pub line: u32,
}

/// Finds every item a file pulls from the shimmed crates, through `use`
/// trees and inline qualified paths (`serde::Serialize` in a derive).
pub fn collect_shim_imports(src: &str) -> Vec<ShimImport> {
    let tokens = lex(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        let t = code[k];
        if t.is_ident("use")
            && code.get(k + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && SHIM_ROOTS.contains(&n.text.as_str())
            })
            && code.get(k + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(k + 3).is_some_and(|n| n.is_punct(':'))
        {
            let root = code[k + 1].text.clone();
            let mut j = k + 4;
            let mut after_as = false;
            while j < code.len() && !code[j].is_punct(';') {
                let u = code[j];
                if u.kind == TokenKind::Ident {
                    if u.text == "as" {
                        after_as = true;
                    } else if after_as {
                        after_as = false; // local rename, not a shim item
                    } else if !matches!(u.text.as_str(), "self" | "super" | "crate") {
                        out.push(ShimImport {
                            root: root.clone(),
                            item: u.text.clone(),
                            line: u.line,
                        });
                    }
                }
                j += 1;
            }
            k = j;
        } else if t.kind == TokenKind::Ident
            && SHIM_ROOTS.contains(&t.text.as_str())
            && code.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(k + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(k + 3).is_some_and(|n| n.kind == TokenKind::Ident)
            && !k
                .checked_sub(1)
                .is_some_and(|p| code[p].is_punct(':') || code[p].is_punct('.'))
        {
            // Inline qualified path: check the first segment after the
            // crate root (deeper segments resolve inside the shim).
            out.push(ShimImport {
                root: t.text.clone(),
                item: code[k + 3].text.clone(),
                line: t.line,
            });
            k += 3;
        }
        k += 1;
    }
    out
}

/// R4: every imported shim item must exist in the shim's exports.
pub fn shim_drift(
    rel: &str,
    imports: &[ShimImport],
    exports: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for imp in imports {
        // `serde` re-exports its derive macros from `serde_derive`; treat
        // the pair as one namespace in both directions.
        let roots: &[&str] = if imp.root.starts_with("serde") {
            &["serde", "serde_derive"]
        } else {
            &[]
        };
        let found = exports
            .get(&imp.root)
            .is_some_and(|set| set.contains(&imp.item))
            || roots
                .iter()
                .any(|r| exports.get(*r).is_some_and(|set| set.contains(&imp.item)));
        if !found {
            out.push(Diagnostic {
                rule: Rule::ShimDrift,
                file: rel.to_string(),
                line: imp.line,
                message: format!(
                    "`{}::{}` is not provided by shims/{} — the shim has drifted from \
                     the workspace's imports",
                    imp.root, imp.item, imp.root
                ),
            });
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/pagetable.rs"),
            FileClass {
                crate_dir: Some("core".into()),
                library: true,
                shim: false
            }
        );
        assert!(!classify("crates/core/tests/properties.rs").library);
        assert!(!classify("crates/bench/benches/missrate.rs").library);
        assert!(classify("shims/rand/src/lib.rs").shim);
        assert!(classify("src/lib.rs").library);
        assert!(!classify("src/bin/hbat.rs").library);
        assert_eq!(classify("tests/integration.rs").crate_dir, None);
    }

    #[test]
    fn hash_in_report_crate_flagged_but_not_in_tests() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        let d = lint_file("crates/analysis/src/x.rs", src, &LintOptions::default());
        assert!(d.iter().all(|d| d.rule == Rule::Determinism));
        assert!(d.iter().any(|d| d.line == 1));
        assert!(d.iter().all(|d| d.line <= 2), "{d:?}");
    }

    #[test]
    fn hash_iteration_flagged_in_sim_crate() {
        let src = "use std::collections::HashMap;\npub struct S { m: HashMap<u64, u64> }\nimpl S {\n    pub fn sum(&self) -> u64 { self.m.values().sum() }\n    pub fn count(&self) -> usize { self.m.len() }\n}\n";
        let d = lint_file("crates/core/src/x.rs", src, &LintOptions::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("hash-ordered `m`"));
    }

    #[test]
    fn wall_clock_flagged_in_sim_crate_only() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert!(
            !lint_file("crates/bench/src/x.rs", src, &LintOptions::default())
                .iter()
                .any(|d| d.rule == Rule::Determinism)
        );
        assert!(
            lint_file("crates/cpu/src/x.rs", src, &LintOptions::default())
                .iter()
                .any(|d| d.rule == Rule::Determinism)
        );
    }

    #[test]
    fn hot_region_bans_allocation() {
        let src = "fn cold() { let v = vec![1]; }\n// hbat-lint: hot\nfn hot() { let v = Vec::new(); let s = format!(\"x\"); }\n";
        let d = lint_file("crates/cpu/src/x.rs", src, &LintOptions::default());
        let hot: Vec<_> = d.iter().filter(|d| d.rule == Rule::HotPath).collect();
        assert_eq!(hot.len(), 2, "{hot:?}");
        assert!(hot.iter().all(|d| d.line == 3));
    }

    #[test]
    fn unwrap_flagged_unless_documented_or_test() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n/// # Panics\n/// On None.\npub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }\n";
        let d = lint_file("crates/isa/src/x.rs", src, &LintOptions::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn computed_index_in_pub_fn_flagged_literal_ok() {
        let src = "pub fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\npub fn g(xs: &[u32; 4]) -> u32 { xs[0] }\nfn h(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        let d = lint_file("crates/stats/src/x.rs", src, &LintOptions::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn allow_suppresses_and_requires_reason() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // hbat-lint: allow(panic) validated by caller\npub fn g(x: Option<u32>) -> u32 { x.unwrap() } // hbat-lint: allow(panic)\n";
        let d = lint_file("crates/isa/src/x.rs", src, &LintOptions::default());
        // Line 1 fully suppressed; line 2 suppressed but missing-reason reported.
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("reason"));
    }

    #[test]
    fn rule_toggles() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let off = LintOptions {
            rule_mask: Rule::Determinism.bit(),
        };
        assert!(lint_file("crates/isa/src/x.rs", src, &off).is_empty());
    }

    #[test]
    fn shim_exports_and_drift() {
        let shim = "pub struct SmallRng;\npub trait Rng {}\nmacro_rules! gen { () => {} }\npub use internal::SeedableRng;\npub mod rngs;\n";
        let exports = shim_exports(&[shim]);
        for name in ["SmallRng", "Rng", "gen", "SeedableRng", "rngs"] {
            assert!(exports.contains(name), "missing {name}");
        }
        let user =
            "use rand::rngs::SmallRng;\nuse rand::{Rng, SeedableRng};\nuse rand::DoesNotExist;\n";
        let imports = collect_shim_imports(user);
        let mut map = BTreeMap::new();
        map.insert("rand".to_string(), exports);
        let d = shim_drift("crates/x/src/y.rs", &imports, &map);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("DoesNotExist"));
    }

    #[test]
    fn use_as_rename_checks_source_not_alias() {
        let user = "use rand::Rng as LocalName;\n";
        let imports = collect_shim_imports(user);
        assert_eq!(imports.len(), 1);
        assert_eq!(imports[0].item, "Rng");
    }

    #[test]
    fn inline_qualified_path_checked() {
        let user = "#[cfg_attr(feature = \"serde\", derive(serde::Serialize))]\nstruct S;\n";
        let imports = collect_shim_imports(user);
        assert_eq!(imports.len(), 1);
        assert_eq!(imports[0].root, "serde");
        assert_eq!(imports[0].item, "Serialize");
    }
}
