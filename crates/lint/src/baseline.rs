//! The suppression baseline: a checked-in list of known findings.
//!
//! Each non-comment line is one finding key (`code|file|message`); a key
//! repeated N times tolerates N occurrences. Keys deliberately omit line
//! numbers so unrelated edits that shift code do not invalidate the
//! baseline. A finding not covered by the baseline is *new* and fails
//! the run.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;

const HEADER: &str = "\
# hbat-lint baseline — known findings tolerated by CI.
# One `code|file|message` key per line; duplicates tolerate multiplicity.
# Regenerate with: cargo lint -- --write-baseline
";

/// Parses baseline text into key → tolerated count.
pub fn parse(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *out.entry(line.to_string()).or_insert(0) += 1;
    }
    out
}

/// Renders findings as baseline text (sorted, with header).
pub fn render(findings: &[Diagnostic]) -> String {
    let mut keys: Vec<String> = findings.iter().map(Diagnostic::baseline_key).collect();
    keys.sort();
    let mut out = String::from(HEADER);
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// The two directions of baseline drift: findings not covered by the
/// baseline (added) and baseline entries no longer produced (stale).
pub struct Drift {
    /// Each finding, marked new (`true`) or baselined (`false`).
    pub marked: Vec<(Diagnostic, bool)>,
    /// Baseline keys with unconsumed tolerance, one entry per leftover
    /// occurrence (sorted — a key tolerated twice but hit once appears
    /// once here).
    pub stale: Vec<String>,
}

/// Diffs findings against the baseline in both directions, consuming
/// baseline counts so N tolerated occurrences cover only N findings.
pub fn diff(findings: Vec<Diagnostic>, baseline: &BTreeMap<String, usize>) -> Drift {
    let mut remaining = baseline.clone();
    let marked = findings
        .into_iter()
        .map(|d| {
            let key = d.baseline_key();
            let is_new = match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            };
            (d, is_new)
        })
        .collect();
    let mut stale = Vec::new();
    for (key, n) in remaining {
        for _ in 0..n {
            stale.push(key.clone());
        }
    }
    Drift { marked, stale }
}

/// Marks each finding as new (`true`) or baselined (`false`); see
/// [`diff`] for the two-directional report.
pub fn mark_new(
    findings: Vec<Diagnostic>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<(Diagnostic, bool)> {
    diff(findings, baseline).marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Rule;

    fn diag(file: &str, msg: &str) -> Diagnostic {
        Diagnostic {
            rule: Rule::PanicPolicy,
            file: file.into(),
            line: 1,
            message: msg.into(),
        }
    }

    #[test]
    fn roundtrip_marks_everything_baselined() {
        let findings = vec![diag("a.rs", "m1"), diag("a.rs", "m1"), diag("b.rs", "m2")];
        let text = render(&findings);
        let base = parse(&text);
        let marked = mark_new(findings, &base);
        assert!(marked.iter().all(|(_, n)| !n));
    }

    #[test]
    fn multiplicity_is_counted() {
        let base = parse(&render(&[diag("a.rs", "m")]));
        let marked = mark_new(vec![diag("a.rs", "m"), diag("a.rs", "m")], &base);
        assert_eq!(marked.iter().filter(|(_, n)| *n).count(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let base = parse("# header\n\nR3|a.rs|m\n");
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn render_is_identical_for_any_input_order() {
        let findings: Vec<Diagnostic> = (0..16)
            .map(|i| {
                diag(
                    &format!("crates/x/src/f{}.rs", i % 7),
                    &format!("m{}", i % 5),
                )
            })
            .collect();
        let golden = render(&findings);
        // Fisher–Yates with a fixed-seed LCG: several genuinely shuffled
        // permutations, reproducible across runs.
        let mut state = 0x9e37_79b9_u64;
        let mut shuffled = findings;
        for _ in 0..8 {
            for i in (1..shuffled.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            assert_eq!(
                render(&shuffled),
                golden,
                "baseline text depends on input order"
            );
        }
    }

    #[test]
    fn drift_reports_stale_entries_with_multiplicity() {
        let base = parse(&render(&[
            diag("a.rs", "m"),
            diag("a.rs", "m"),
            diag("b.rs", "gone"),
        ]));
        let drift = diff(vec![diag("a.rs", "m")], &base);
        assert!(drift.marked.iter().all(|(_, n)| !n));
        assert_eq!(
            drift.stale,
            vec!["R3|a.rs|m".to_string(), "R3|b.rs|gone".to_string()]
        );
    }
}
