//! Diagnostics: rule identities, findings, and the human/JSON renderers.

use std::fmt;

/// The six repo-specific rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: bit-determinism — no hash-order-dependent output, no wall
    /// clocks in simulation crates.
    Determinism,
    /// R2: no allocation APIs inside `// hbat-lint: hot` regions.
    HotPath,
    /// R3: no `unwrap`/`expect`/`panic!`/undocumented computed indexing
    /// in library code of the panic-policy crates.
    PanicPolicy,
    /// R4: every item imported from a shimmed crate must exist in the
    /// shim's source.
    ShimDrift,
    /// R5: interprocedural hot propagation — allocation APIs in any
    /// function transitively reachable from a `hbat-lint: hot` region,
    /// across files and crates.
    HotProp,
    /// R6: panic reachability — `panic!`/`unwrap`/`expect`/computed
    /// indexing in any function transitively reachable from the engine
    /// hot entry points (`Engine::run`, `Machine::step`).
    PanicReach,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Determinism,
    Rule::HotPath,
    Rule::PanicPolicy,
    Rule::ShimDrift,
    Rule::HotProp,
    Rule::PanicReach,
];

/// Bitmask with every rule enabled.
pub fn all_rules_mask() -> u8 {
    ALL_RULES.iter().map(|r| r.bit()).fold(0, |a, b| a | b)
}

impl Rule {
    /// Short code used in output and baselines.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Determinism => "R1",
            Rule::HotPath => "R2",
            Rule::PanicPolicy => "R3",
            Rule::ShimDrift => "R4",
            Rule::HotProp => "R5",
            Rule::PanicReach => "R6",
        }
    }

    /// Name accepted by `--only`/`--skip` and `allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::HotPath => "hot",
            Rule::PanicPolicy => "panic",
            Rule::ShimDrift => "shims",
            Rule::HotProp => "hot-prop",
            Rule::PanicReach => "panic-reach",
        }
    }

    /// Bit for suppression masks.
    pub fn bit(self) -> u8 {
        match self {
            Rule::Determinism => 1 << 0,
            Rule::HotPath => 1 << 1,
            Rule::PanicPolicy => 1 << 2,
            Rule::ShimDrift => 1 << 3,
            Rule::HotProp => 1 << 4,
            Rule::PanicReach => 1 << 5,
        }
    }

    /// Parses a rule name or code (case-insensitive); `all` is every rule.
    pub fn parse_mask(s: &str) -> Option<u8> {
        let s = s.trim().to_ascii_lowercase();
        if s == "all" {
            return Some(ALL_RULES.iter().map(|r| r.bit()).fold(0, |a, b| a | b));
        }
        ALL_RULES
            .iter()
            .find(|r| r.name() == s || r.code().to_ascii_lowercase() == s)
            .map(|r| r.bit())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Path relative to the workspace root, with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    /// The identity used for baseline matching: line numbers drift, so
    /// the key is (rule, file, message).
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule.code(), self.file, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes a string for JSON output.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders findings as a JSON document; `new` marks findings absent from
/// the baseline.
pub fn render_json(findings: &[(Diagnostic, bool)]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, (d, is_new)) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"new\": {}}}",
            json_escape(d.rule.code()),
            json_escape(d.rule.name()),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            is_new,
        ));
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let new = findings.iter().filter(|(_, n)| *n).count();
    out.push_str(&format!(
        "  ],\n  \"total\": {},\n  \"new\": {}\n}}",
        findings.len(),
        new
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parsing_accepts_names_codes_and_all() {
        assert_eq!(Rule::parse_mask("determinism"), Some(1));
        assert_eq!(Rule::parse_mask("R3"), Some(4));
        assert_eq!(Rule::parse_mask("r2"), Some(2));
        assert_eq!(Rule::parse_mask("hot-prop"), Some(1 << 4));
        assert_eq!(Rule::parse_mask("R6"), Some(1 << 5));
        assert_eq!(Rule::parse_mask("all"), Some(0b11_1111));
        assert_eq!(Rule::parse_mask("bogus"), None);
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            rule: Rule::PanicPolicy,
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "say \"no\"".into(),
        };
        let s = render_json(&[(d, true)]);
        assert!(s.contains("\\\"no\\\""));
        assert!(s.contains("\"new\": true"));
        assert!(s.contains("\"total\": 1"));
    }
}
