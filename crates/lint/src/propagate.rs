//! Propagation passes over the workspace call graph.
//!
//! * **R5 hot propagation** — the transitive closure of calls made on
//!   `hbat-lint: hot` lines inherits hot-ness; R2's allocation checks
//!   then fire inside every inherited function. Sites on literal hot
//!   lines are R2's jurisdiction and skipped here, so a finding is
//!   reported exactly once. Suppressing with `allow(hot)` or
//!   `allow(hot-prop)` at the site (or its function) both work.
//! * **R6 panic reachability** — every `panic!`-family macro,
//!   `.unwrap()`/`.expect(`, and computed-index site in a function
//!   transitively reachable from the engine hot entry points
//!   (`Engine::run`, `Machine::step`) is reported, honoring the
//!   `# Panics` doc convention and `allow(panic)`/`allow(panic-reach)`
//!   suppressions from PR 2's panic policy.
//!
//! Both passes skip test code entirely and report a witness call chain
//! (`seed -> … -> offender`) so findings are actionable without
//! re-deriving the graph by hand.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Rule};
use crate::graph::CallGraph;
use crate::parse::{FileInfo, FnDef};

/// The engine hot entry points whose transitive callees must not panic:
/// `(impl type, method)`.
pub const PANIC_ENTRY_POINTS: &[(&str, &str)] = &[("Engine", "run"), ("Machine", "step")];

/// The result of both propagation passes, also consumed by `--graph`.
#[derive(Debug, Default)]
pub struct Propagation {
    /// Node indices hot by propagation (closure of hot-line calls).
    pub hot: Vec<usize>,
    /// Node indices reachable from the panic entry points (inclusive).
    pub panic_reachable: Vec<usize>,
    /// Witness parents for hot nodes.
    pub hot_parent: BTreeMap<usize, usize>,
    /// Witness parents for panic-reachable nodes.
    pub panic_parent: BTreeMap<usize, usize>,
    /// The entry nodes that seeded `panic_reachable`.
    pub entries: Vec<usize>,
}

fn node_def<'a>(files: &'a [FileInfo], g: &CallGraph, n: usize) -> &'a FnDef {
    let (fi, di) = g.nodes[n];
    &files[fi].fns[di]
}

/// Runs both propagation passes over the graph.
pub fn propagate(files: &[FileInfo], g: &CallGraph) -> Propagation {
    let mut p = Propagation::default();

    // --- hot seeds: callees of call edges whose site is on a hot line.
    // The function *containing* a hot region is deliberately not seeded:
    // its literal-hot sites are R2's jurisdiction, and its code outside
    // the region (setup/teardown) is not hot at all.
    let mut seeds: Vec<usize> = Vec::new();
    for n in 0..g.nodes.len() {
        let d = node_def(files, g, n);
        if d.test {
            continue;
        }
        let (fi, _) = g.nodes[n];
        let hot_ranges = &files[fi].hot;
        let in_hot = |line: u32| hot_ranges.iter().any(|&(a, b)| a <= line && line <= b);
        for call in &d.calls {
            if in_hot(call.line) {
                // The *callees* of hot-line calls seed the closure;
                // resolve via the edge list (site line match).
                for &(a, b, line) in &g.edges {
                    if a == n && line == call.line {
                        seeds.push(b);
                    }
                }
            }
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    let (hot_set, hot_parent) = g.reach(&seeds);
    p.hot = hot_set.into_iter().collect();
    p.hot_parent = hot_parent;

    // --- panic reachability from the engine entry points.
    let mut entries: Vec<usize> = Vec::new();
    for n in 0..g.nodes.len() {
        let d = node_def(files, g, n);
        if d.test {
            continue;
        }
        if PANIC_ENTRY_POINTS
            .iter()
            .any(|&(q, m)| d.qualifier.as_deref() == Some(q) && d.name == m)
        {
            entries.push(n);
        }
    }
    let (reach_set, panic_parent) = g.reach(&entries);
    p.panic_reachable = reach_set.into_iter().collect();
    p.panic_parent = panic_parent;
    p.entries = entries;
    p
}

/// R5: allocation sites inside propagated-hot functions.
pub fn rule_hot_prop(files: &[FileInfo], g: &CallGraph, p: &Propagation) -> Vec<Diagnostic> {
    let suppress = Rule::HotPath.bit() | Rule::HotProp.bit();
    let mut out = Vec::new();
    for &n in &p.hot {
        let d = node_def(files, g, n);
        if d.test {
            continue;
        }
        for site in &d.allocs {
            if site.test || site.literal_hot || site.allow_mask & suppress != 0 {
                continue;
            }
            let chain = g.chain(files, &p.hot_parent, n);
            out.push(Diagnostic {
                rule: Rule::HotProp,
                file: d.file.clone(),
                line: site.line,
                message: format!(
                    "allocation API `{}` in `{}`, which is transitively reachable from a \
                     `hbat-lint: hot` region (call chain: {chain}) — hot-path callees must \
                     stay allocation-free or carry `hbat-lint: allow(hot-prop) <reason>`",
                    site.what,
                    g.fn_name(files, n),
                ),
            });
        }
    }
    out
}

/// R6: panic sites inside functions reachable from the engine entry
/// points.
pub fn rule_panic_reach(files: &[FileInfo], g: &CallGraph, p: &Propagation) -> Vec<Diagnostic> {
    let suppress = Rule::PanicPolicy.bit() | Rule::PanicReach.bit();
    let entry_names: Vec<String> = p.entries.iter().map(|&e| g.fn_name(files, e)).collect();
    let entry_label = if entry_names.is_empty() {
        "engine entry".to_string()
    } else {
        entry_names.join("/")
    };
    let mut out = Vec::new();
    for &n in &p.panic_reachable {
        let d = node_def(files, g, n);
        if d.test || d.panic_doc {
            continue;
        }
        for site in &d.panics {
            if site.test || site.panic_doc || site.allow_mask & suppress != 0 {
                continue;
            }
            let chain = g.chain(files, &p.panic_parent, n);
            out.push(Diagnostic {
                rule: Rule::PanicReach,
                file: d.file.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}`, reachable from engine entry {entry_label} (call chain: \
                     {chain}) — return a Result, document `# Panics`, or add \
                     `hbat-lint: allow(panic-reach) <reason>`",
                    site.what,
                    g.fn_name(files, n),
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use crate::parse::parse_workspace;

    fn analyze(files: &[(&str, &str)]) -> (Vec<FileInfo>, CallGraph, Propagation) {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let parsed = parse_workspace(&owned);
        let g = build(&parsed);
        let p = propagate(&parsed, &g);
        (parsed, g, p)
    }

    #[test]
    fn hot_propagates_across_crates() {
        let (files, g, p) = analyze(&[
            (
                "crates/cpu/src/engine.rs",
                "use hbat_mem::build_tables;\n// hbat-lint: hot\nfn scan() { build_tables(); }\n// hbat-lint: cold\n",
            ),
            (
                "crates/mem/src/lib.rs",
                "pub fn build_tables() -> Vec<u32> { let v = Vec::new(); v }\n",
            ),
        ]);
        let d = rule_hot_prop(&files, &g, &p);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::HotProp);
        assert!(d[0].file.contains("mem"), "{d:?}");
        assert!(d[0].message.contains("Vec::new"), "{d:?}");
        assert!(d[0].message.contains("build_tables"), "{d:?}");
    }

    #[test]
    fn literal_hot_sites_left_to_r2() {
        let (files, g, p) = analyze(&[(
            "crates/cpu/src/x.rs",
            "// hbat-lint: hot\nfn f() { let v = Vec::new(); }\n// hbat-lint: cold\n",
        )]);
        let d = rule_hot_prop(&files, &g, &p);
        assert!(d.is_empty(), "literal hot sites are R2's: {d:?}");
    }

    #[test]
    fn panic_reach_two_hops() {
        let (files, g, p) = analyze(&[
            (
                "crates/cpu/src/engine.rs",
                "use hbat_mem::translate;\nstruct Engine;\nimpl Engine { fn run(&mut self) { translate(0); } }\n",
            ),
            (
                "crates/mem/src/lib.rs",
                "pub fn translate(a: u64) -> u64 { lookup(a) }\nfn lookup(a: u64) -> u64 { TABLE[a as usize] }\n",
            ),
        ]);
        let d = rule_panic_reach(&files, &g, &p);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::PanicReach);
        assert!(d[0].message.contains("computed index"), "{d:?}");
        assert!(
            d[0].message.contains("Engine::run -> translate -> lookup"),
            "{d:?}"
        );
    }

    #[test]
    fn panic_doc_and_allow_suppress_r6() {
        let (files, g, p) = analyze(&[
            (
                "crates/cpu/src/engine.rs",
                "struct Engine;\nimpl Engine { fn run(&mut self) { documented(); allowed(); } }\n",
            ),
            (
                "crates/mem/src/lib.rs",
                "/// # Panics\n/// On empty input.\npub fn documented() { None::<u32>.unwrap(); }\n\
                 // hbat-lint: allow(panic-reach) length checked at construction\n\
                 pub fn allowed() { None::<u32>.unwrap(); }\n",
            ),
        ]);
        let d = rule_panic_reach(&files, &g, &p);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unreachable_panics_not_reported_by_r6() {
        let (files, g, p) = analyze(&[(
            "crates/mem/src/lib.rs",
            "pub fn isolated() { None::<u32>.unwrap(); }\n",
        )]);
        let d = rule_panic_reach(&files, &g, &p);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_never_seeds_or_reports() {
        let (files, g, p) = analyze(&[(
            "crates/cpu/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    struct Engine;\n    impl Engine { fn run(&mut self) { helper(); } }\n    fn helper() { None::<u32>.unwrap(); }\n}\n",
        )]);
        let d = rule_panic_reach(&files, &g, &p);
        assert!(d.is_empty(), "{d:?}");
    }
}
