//! Item-level parsing on top of the lexer: function definitions, call
//! sites, and imports, extracted per file for the workspace call graph.
//!
//! This is deliberately *not* a Rust parser. It walks the token stream
//! once with a brace-scope stack (the same technique as
//! [`crate::context::FileContext`]) and recognises exactly the shapes
//! the interprocedural rules need:
//!
//! * `mod name { … }` — module nesting (the file's own module path is
//!   derived from its workspace-relative path);
//! * `impl Type { … }` / `impl Trait for Type { … }` — a qualifier for
//!   the methods inside;
//! * `fn name(…) { … }` — a definition with its body line span, plus
//!   the region flags (`test`, `# Panics` doc, suppression mask) that
//!   the propagation passes honor;
//! * `foo(…)`, `path::to::foo(…)`, `recv.foo(…)` — call sites inside
//!   function bodies;
//! * `use path::{a, b as c};` — the file's import map, used by name
//!   resolution.
//!
//! Anything it cannot classify it skips; macro bodies, trait method
//! *signatures* (no body), and expression subtleties degrade to "no
//! edge", never to a wrong parse of the rest of the file.

use std::collections::BTreeMap;

use crate::context::FileContext;
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{
    alloc_site_hit, classify, computed_index_hit, panic_macro_hit, unwrap_site_hit, KEYWORDS,
};

/// A callee as written at the call site, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(…)` / `a::b::foo(…)` — path segments as written (`crate`,
    /// `self`, and `Self` already normalised by the parser).
    Path(Vec<String>),
    /// `recv.foo(…)`; `on_self` when the receiver is literally `self`.
    Method { name: String, on_self: bool },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
    pub line: u32,
}

/// One allocation or panic site inside a function body, with the
/// context flags the propagation rules honor.
#[derive(Debug, Clone)]
pub struct Site {
    /// Human-readable API name (`Vec::new`, `unwrap()`, `panic!`,
    /// `computed index`).
    pub what: String,
    pub line: u32,
    /// Combined region|line suppression mask at the site.
    pub allow_mask: u8,
    /// Inside test code.
    pub test: bool,
    /// Inside a function documented with `# Panics`.
    pub panic_doc: bool,
    /// On a line inside a literal `hbat-lint: hot` region (already
    /// R2's jurisdiction — R5 skips these to avoid double reporting).
    pub literal_hot: bool,
}

/// One parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Import name of the owning crate (`hbat_cpu`, `hbat_suite`, …).
    pub crate_name: String,
    /// Module path inside the crate (file path + inline `mod`s).
    pub module: Vec<String>,
    /// `impl` type name for methods.
    pub qualifier: Option<String>,
    pub name: String,
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inclusive line span of the body braces (equal lines for
    /// single-line bodies); `(0, 0)` for bodiless trait signatures.
    pub body: (u32, u32),
    pub is_pub: bool,
    /// Defined inside test code.
    pub test: bool,
    /// Documented with `# Panics`.
    pub panic_doc: bool,
    pub calls: Vec<CallSite>,
    pub allocs: Vec<Site>,
    pub panics: Vec<Site>,
}

impl FnDef {
    /// Stable display id: `crate::module::Type::name`.
    pub fn id(&self) -> String {
        let mut parts: Vec<&str> = vec![self.crate_name.as_str()];
        parts.extend(self.module.iter().map(String::as_str));
        if let Some(q) = &self.qualifier {
            parts.push(q);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// Everything the graph needs from one file.
#[derive(Debug, Clone, Default)]
pub struct FileInfo {
    pub file: String,
    pub crate_name: String,
    /// Module path of the file itself.
    pub module: Vec<String>,
    /// Local name → full path, from `use` declarations.
    pub imports: BTreeMap<String, Vec<String>>,
    pub fns: Vec<FnDef>,
    /// Inclusive literal hot line ranges.
    pub hot: Vec<(u32, u32)>,
}

/// Parses every non-shim file of the workspace.
pub fn parse_workspace(files: &[(String, String)]) -> Vec<FileInfo> {
    files
        .iter()
        .filter(|(rel, _)| !classify(rel).shim)
        .map(|(rel, src)| parse_file(rel, src))
        .collect()
}

/// The import name of the crate owning a workspace-relative path.
pub fn crate_name_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", c, ..] => format!("hbat_{}", c.replace('-', "_")),
        ["shims", c, ..] => c.replace('-', "_"),
        _ => "hbat_suite".to_string(),
    }
}

/// The module path a file contributes (before inline `mod`s): `src/x.rs`
/// → `[x]`, `src/a/mod.rs` → `[a]`, `src/lib.rs` → `[]`. Test,
/// example, and bench targets get a synthetic path so that same-file
/// resolution still works while staying distinct from library modules.
fn module_path_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let rest: &[&str] = match parts.as_slice() {
        ["crates", _, rest @ ..] => rest,
        ["shims", _, rest @ ..] => rest,
        rest => rest,
    };
    let mut out: Vec<String> = Vec::new();
    match rest {
        ["src", segs @ ..] => {
            for (i, s) in segs.iter().enumerate() {
                let last = i + 1 == segs.len();
                if last {
                    match s.strip_suffix(".rs") {
                        Some("lib") | Some("main") | Some("mod") => {}
                        Some(stem) => out.push(stem.to_string()),
                        None => out.push((*s).to_string()),
                    }
                } else {
                    out.push((*s).to_string());
                }
            }
        }
        [kind @ ("tests" | "benches" | "examples"), segs @ ..] => {
            out.push((*kind).to_string());
            for s in segs {
                out.push(s.strip_suffix(".rs").unwrap_or(s).to_string());
            }
        }
        segs => {
            for s in segs {
                out.push(s.strip_suffix(".rs").unwrap_or(s).to_string());
            }
        }
    }
    out
}

/// What a brace scope on the stack is.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scope {
    /// `mod name {`
    Module(String),
    /// `impl Type {` / `impl Trait for Type {`
    Impl(Option<String>),
    /// `fn name(...) {` — index into `fns`.
    Fn(usize),
    /// Any other brace (struct body, match arm, block expression…).
    Other,
}

/// Parses one file into its [`FileInfo`].
pub fn parse_file(rel: &str, src: &str) -> FileInfo {
    let tokens = lex(src);
    let ctx = FileContext::of(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let mut info = FileInfo {
        file: rel.to_string(),
        crate_name: crate_name_of(rel),
        module: module_path_of(rel),
        hot: ctx.hot_ranges().to_vec(),
        ..FileInfo::default()
    };

    let mut scopes: Vec<Scope> = Vec::new();
    // Pending item state, cleared at `{` / `;`.
    let mut pend_pub = false;
    let mut pend_fn: Option<(String, u32, bool)> = None; // (name, line, is_pub)
    let mut pend_mod: Option<String> = None;
    let mut pend_impl: Option<Option<String>> = None;

    let tok = |k: usize| code.get(k).map(|&j| &tokens[j]);
    let hot_line = |line: u32, hot: &[(u32, u32)]| hot.iter().any(|&(a, b)| a <= line && line <= b);

    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let t = &tokens[i];

        // Skip attribute bodies wholesale: `#[derive(Default)]`,
        // `#[allow(dead_code)]` and friends would otherwise read as
        // call sites or item keywords.
        if t.is_punct('#') {
            let mut m = k + 1;
            if tok(m).is_some_and(|n| n.is_punct('!')) {
                m += 1;
            }
            if tok(m).is_some_and(|n| n.is_punct('[')) {
                let mut depth = 0i32;
                while let Some(u) = tok(m) {
                    if u.is_punct('[') {
                        depth += 1;
                    } else if u.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                k = m + 1;
                continue;
            }
        }

        let in_fn = scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(d) => Some(*d),
            _ => None,
        });

        // --- site collection inside fn bodies -------------------------
        if let Some(d) = in_fn {
            let flags = ctx.flags[i];
            let mk_site = |what: String| Site {
                what,
                line: t.line,
                allow_mask: ctx.allow_mask_at(i, t.line),
                test: flags.test,
                panic_doc: flags.panic_doc,
                literal_hot: hot_line(t.line, &info.hot),
            };
            if let Some(api) = alloc_site_hit(&tokens, &code, k) {
                info.fns[d].allocs.push(mk_site(api));
            }
            if let Some(name) = unwrap_site_hit(&tokens, &code, k) {
                info.fns[d].panics.push(mk_site(format!("`{name}`")));
            } else if let Some(mac) = panic_macro_hit(&tokens, &code, k) {
                info.fns[d].panics.push(mk_site(format!("`{mac}`")));
            } else if computed_index_hit(&tokens, &code, k) {
                info.fns[d]
                    .panics
                    .push(mk_site("computed index".to_string()));
            }

            // Method call: `recv.foo(` (but not `.foo::<T>(`, rare and
            // skipped; not `.await`, which is never followed by `(`).
            if t.is_punct('.')
                && tok(k + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                && tok(k + 2).is_some_and(|n| n.is_punct('('))
            {
                let name = tok(k + 1).map(|n| n.text.clone()).unwrap_or_default();
                let on_self = k
                    .checked_sub(1)
                    .and_then(tok)
                    .is_some_and(|p| p.is_ident("self"));
                if !KEYWORDS.contains(&name.as_str()) {
                    info.fns[d].calls.push(CallSite {
                        callee: Callee::Method { name, on_self },
                        line: t.line,
                    });
                }
            }

            // Path call: `[a :: b ::] foo (` or `foo ::< T > (`. Path
            // heads `self`/`Self`/`crate`/`super` are keywords but
            // legal when followed by `::`.
            let path_head_keyword = matches!(t.text.as_str(), "self" | "Self" | "crate" | "super")
                && tok(k + 1).is_some_and(|n| n.is_punct(':'))
                && tok(k + 2).is_some_and(|n| n.is_punct(':'));
            if t.kind == TokenKind::Ident
                && (!KEYWORDS.contains(&t.text.as_str()) || path_head_keyword)
                && !k
                    .checked_sub(1)
                    .and_then(tok)
                    .is_some_and(|p| p.is_punct('.') || p.is_punct(':') || p.is_ident("fn"))
                && !tok(k + 1).is_some_and(|n| n.is_punct('!'))
            {
                // Walk forward through the path to its last segment.
                let mut segs = vec![t.text.clone()];
                let mut j = k;
                while tok(j + 1).is_some_and(|n| n.is_punct(':'))
                    && tok(j + 2).is_some_and(|n| n.is_punct(':'))
                    && tok(j + 3).is_some_and(|n| n.kind == TokenKind::Ident)
                {
                    segs.push(tok(j + 3).map(|n| n.text.clone()).unwrap_or_default());
                    j += 3;
                }
                // Optional turbofish between the last segment and `(`.
                let mut call_paren = j + 1;
                if tok(j + 1).is_some_and(|n| n.is_punct(':'))
                    && tok(j + 2).is_some_and(|n| n.is_punct(':'))
                    && tok(j + 3).is_some_and(|n| n.is_punct('<'))
                {
                    let mut depth = 0i32;
                    let mut m = j + 3;
                    while let Some(u) = tok(m) {
                        if u.is_punct('<') {
                            depth += 1;
                        } else if u.is_punct('>') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if u.is_punct(';') || u.is_punct('{') {
                            break; // not a turbofish after all
                        }
                        m += 1;
                    }
                    call_paren = m + 1;
                }
                if tok(call_paren).is_some_and(|n| n.is_punct('(')) {
                    let last = segs.last().cloned().unwrap_or_default();
                    // `Foo(` with an uppercase initial and no path is a
                    // tuple-struct/variant constructor more often than a
                    // call; keep it — resolution finds no fn and drops it.
                    let impl_qualifier = scopes.iter().rev().find_map(|s| match s {
                        Scope::Impl(q) => Some(q.clone()),
                        _ => None,
                    });
                    // Normalise leading `self`/`crate`/`Self`.
                    let norm: Vec<String> = match segs[0].as_str() {
                        "Self" => {
                            let mut v: Vec<String> = impl_qualifier.flatten().into_iter().collect();
                            v.extend(segs[1..].iter().cloned());
                            if v.len() == segs.len() {
                                v
                            } else {
                                segs.clone()
                            }
                        }
                        _ => segs.clone(),
                    };
                    let _ = last;
                    info.fns[d].calls.push(CallSite {
                        callee: Callee::Path(norm),
                        line: t.line,
                    });
                }
            }
        }

        // --- item structure -------------------------------------------
        match t.kind {
            TokenKind::Ident if t.text == "pub" => {
                pend_pub = true;
                // Skip `pub(crate)` / `pub(super)` visibility groups.
                if tok(k + 1).is_some_and(|n| n.is_punct('(')) {
                    let mut depth = 0i32;
                    let mut m = k + 1;
                    while let Some(u) = tok(m) {
                        if u.is_punct('(') {
                            depth += 1;
                        } else if u.is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    k = m;
                }
            }
            TokenKind::Ident if t.text == "mod" => {
                if let Some(n) = tok(k + 1) {
                    if n.kind == TokenKind::Ident {
                        pend_mod = Some(n.text.clone());
                    }
                }
            }
            TokenKind::Ident if t.text == "impl" => {
                pend_impl = Some(parse_impl_type(&tokens, &code, k));
            }
            TokenKind::Ident if t.text == "fn" => {
                if let Some(n) = tok(k + 1) {
                    if n.kind == TokenKind::Ident {
                        pend_fn = Some((n.text.clone(), t.line, pend_pub));
                        k += 1; // never treat the defined name as a call
                    }
                }
            }
            TokenKind::Ident if t.text == "use" && in_fn.is_none() => {
                k = collect_use(&tokens, &code, k, &mut info.imports);
            }
            TokenKind::Punct if t.is_punct('{') => {
                let scope = if let Some((name, line, is_pub)) = pend_fn.take() {
                    let flags = ctx.flags[i];
                    let module: Vec<String> = info
                        .module
                        .iter()
                        .cloned()
                        .chain(scopes.iter().filter_map(|s| match s {
                            Scope::Module(m) => Some(m.clone()),
                            _ => None,
                        }))
                        .collect();
                    let qualifier = scopes.iter().rev().find_map(|s| match s {
                        Scope::Impl(q) => Some(q.clone()),
                        _ => None,
                    });
                    info.fns.push(FnDef {
                        crate_name: info.crate_name.clone(),
                        module,
                        qualifier: qualifier.flatten(),
                        name,
                        file: rel.to_string(),
                        line,
                        body: (t.line, t.line),
                        is_pub,
                        test: flags.test,
                        panic_doc: flags.panic_doc,
                        calls: Vec::new(),
                        allocs: Vec::new(),
                        panics: Vec::new(),
                    });
                    Scope::Fn(info.fns.len() - 1)
                } else if let Some(m) = pend_mod.take() {
                    Scope::Module(m)
                } else if let Some(q) = pend_impl.take() {
                    Scope::Impl(q)
                } else {
                    Scope::Other
                };
                scopes.push(scope);
                (pend_pub, pend_mod, pend_impl) = (false, None, None);
            }
            TokenKind::Punct if t.is_punct('}') => {
                if let Some(Scope::Fn(d)) = scopes.pop() {
                    info.fns[d].body.1 = t.line;
                }
                // Struct-field `pub`s etc. must not leak onto the item
                // that follows the closing brace.
                (pend_pub, pend_fn, pend_mod, pend_impl) = (false, None, None, None);
            }
            TokenKind::Punct if t.is_punct(';') => {
                (pend_pub, pend_fn, pend_mod, pend_impl) = (false, None, None, None);
            }
            _ => {}
        }
        k += 1;
    }
    // Unclosed fn bodies (unbalanced braces) extend to the last line.
    let last_line = tokens.last().map(|t| t.line).unwrap_or(1);
    for s in scopes {
        if let Scope::Fn(d) = s {
            info.fns[d].body.1 = last_line;
        }
    }
    info
}

/// The implemented type name of an `impl` header starting at code
/// position `k`: the last path segment before the body `{` (after
/// `for`, if present), generics stripped.
fn parse_impl_type(tokens: &[Token], code: &[usize], k: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut after_for = false;
    let mut candidate: Option<String> = None;
    let mut in_where = false;
    for &j in code.get(k + 1..)? {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct if t.is_punct('<') => angle += 1,
            TokenKind::Punct if t.is_punct('>') => angle -= 1,
            TokenKind::Punct if t.is_punct('{') && angle <= 0 => break,
            TokenKind::Punct if t.is_punct(';') => break,
            TokenKind::Ident if t.text == "for" && angle <= 0 => {
                after_for = true;
                candidate = None;
            }
            TokenKind::Ident if t.text == "where" && angle <= 0 => in_where = true,
            TokenKind::Ident
                if angle <= 0
                    && !in_where
                    && !matches!(t.text.as_str(), "dyn" | "mut" | "const") =>
            {
                candidate = Some(t.text.clone());
            }
            _ => {}
        }
    }
    let _ = after_for;
    candidate
}

/// Collects a `use path::{tree};` declaration into `imports` (local
/// name → full path). Returns the code index of the terminating `;`.
fn collect_use(
    tokens: &[Token],
    code: &[usize],
    k: usize,
    imports: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let tok = |k: usize| code.get(k).map(|&j| &tokens[j]);
    // Prefix path segments up to a `{`, `*`, or the final segment.
    let mut prefix: Vec<String> = Vec::new();
    let mut j = k + 1;
    let mut stack: Vec<Vec<String>> = Vec::new();
    let mut pending: Option<String> = None;
    let mut after_as = false;
    while let Some(t) = tok(j) {
        if t.is_punct(';') {
            break;
        }
        match t.kind {
            TokenKind::Ident if t.text == "as" => {
                after_as = true;
            }
            TokenKind::Ident => {
                if after_as {
                    // `x as y`: the local name is `y`, path is prefix+x.
                    if let Some(orig) = pending.take() {
                        let mut path = prefix.clone();
                        path.push(orig);
                        imports.insert(t.text.clone(), path);
                    }
                    after_as = false;
                } else {
                    // Previous pending segment was an intermediate one.
                    if let Some(p) = pending.take() {
                        prefix.push(p);
                    }
                    pending = Some(t.text.clone());
                }
            }
            TokenKind::Punct if t.is_punct('{') => {
                if let Some(p) = pending.take() {
                    prefix.push(p);
                }
                stack.push(prefix.clone());
            }
            TokenKind::Punct if t.is_punct('}') => {
                finish_pending(&mut pending, &prefix, imports);
                prefix = stack.pop().unwrap_or_default();
            }
            TokenKind::Punct if t.is_punct(',') => {
                finish_pending(&mut pending, &prefix, imports);
                prefix = stack.last().cloned().unwrap_or_default();
            }
            TokenKind::Punct if t.is_punct('*') => {
                pending = None; // glob imports are not tracked
            }
            _ => {}
        }
        j += 1;
    }
    finish_pending(&mut pending, &prefix, imports);
    j
}

fn finish_pending(
    pending: &mut Option<String>,
    prefix: &[String],
    imports: &mut BTreeMap<String, Vec<String>>,
) {
    if let Some(name) = pending.take() {
        if name == "self" {
            // `use a::b::{self}` imports the module `b`.
            if let Some(last) = prefix.last() {
                imports.insert(last.clone(), prefix.to_vec());
            }
        } else {
            let mut path = prefix.to_vec();
            path.push(name.clone());
            imports.insert(name, path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> FileInfo {
        parse_file(rel, src)
    }

    #[test]
    fn crate_and_module_paths() {
        assert_eq!(crate_name_of("crates/cpu/src/engine.rs"), "hbat_cpu");
        assert_eq!(crate_name_of("src/lib.rs"), "hbat_suite");
        assert_eq!(crate_name_of("tests/cli.rs"), "hbat_suite");
        assert_eq!(
            module_path_of("crates/cpu/src/engine.rs"),
            vec!["engine".to_string()]
        );
        assert!(module_path_of("crates/cpu/src/lib.rs").is_empty());
        assert_eq!(
            module_path_of("crates/isa/src/programs/mod.rs"),
            vec!["programs".to_string()]
        );
        assert_eq!(
            module_path_of("crates/isa/tests/properties.rs"),
            vec!["tests".to_string(), "properties".to_string()]
        );
    }

    #[test]
    fn fn_defs_with_modules_and_impls() {
        let src = "\
pub fn free() { helper(); }
fn helper() {}
mod inner {
    pub fn nested() {}
}
struct S;
impl S {
    pub fn method(&self) { self.other(); }
    fn other(&self) {}
}
impl Display for S {
    fn fmt(&self) {}
}
";
        let info = one("crates/cpu/src/x.rs", src);
        let ids: Vec<String> = info.fns.iter().map(FnDef::id).collect();
        assert!(ids.contains(&"hbat_cpu::x::free".to_string()), "{ids:?}");
        assert!(
            ids.contains(&"hbat_cpu::x::inner::nested".to_string()),
            "{ids:?}"
        );
        assert!(
            ids.contains(&"hbat_cpu::x::S::method".to_string()),
            "{ids:?}"
        );
        assert!(ids.contains(&"hbat_cpu::x::S::fmt".to_string()), "{ids:?}");
        let free = info.fns.iter().find(|f| f.name == "free").unwrap();
        assert!(free.is_pub);
        assert_eq!(free.calls.len(), 1);
        assert_eq!(free.calls[0].callee, Callee::Path(vec!["helper".into()]));
        let method = info.fns.iter().find(|f| f.name == "method").unwrap();
        assert_eq!(
            method.calls[0].callee,
            Callee::Method {
                name: "other".into(),
                on_self: true
            }
        );
    }

    #[test]
    fn body_spans_cover_lines() {
        let src = "fn a() {\n    x();\n    y();\n}\nfn b() {}\n";
        let info = one("crates/cpu/src/x.rs", src);
        assert_eq!(info.fns[0].body, (1, 4));
        assert_eq!(info.fns[1].body, (5, 5));
    }

    #[test]
    fn qualified_and_turbofish_calls() {
        let src =
            "fn f() { mem::Cache::probe(x); parse::<u32>(s); Self::go(); }\nimpl T { fn go() {} }";
        let info = one("crates/cpu/src/x.rs", src);
        let calls = &info.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["mem".into(), "Cache".into(), "probe".into()])));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["parse".into()])));
        // `Self::go` outside an impl normalises to the literal path.
        assert!(calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Path(p) if p.last() == Some(&"go".to_string()))));
    }

    #[test]
    fn use_trees_flat_grouped_renamed() {
        let src = "\
use hbat_mem::Cache;
use hbat_isa::{Machine, trace::TraceInst as TI};
use std::collections::BTreeMap;
fn f() {}
";
        let info = one("crates/cpu/src/x.rs", src);
        assert_eq!(
            info.imports.get("Cache"),
            Some(&vec!["hbat_mem".to_string(), "Cache".to_string()])
        );
        assert_eq!(
            info.imports.get("Machine"),
            Some(&vec!["hbat_isa".to_string(), "Machine".to_string()])
        );
        assert_eq!(
            info.imports.get("TI"),
            Some(&vec![
                "hbat_isa".to_string(),
                "trace".to_string(),
                "TraceInst".to_string()
            ])
        );
        assert_eq!(
            info.imports.get("BTreeMap"),
            Some(&vec![
                "std".to_string(),
                "collections".to_string(),
                "BTreeMap".to_string()
            ])
        );
    }

    #[test]
    fn sites_collected_with_flags() {
        let src = "\
// hbat-lint: hot
fn hot_caller() { helper(); }
// hbat-lint: cold
fn cold() {
    let v = Vec::new();
    let x = opt.unwrap();
    panic!(\"boom\");
    let y = xs[i];
}
";
        let info = one("crates/cpu/src/x.rs", src);
        let cold = info.fns.iter().find(|f| f.name == "cold").unwrap();
        assert_eq!(cold.allocs.len(), 1);
        assert_eq!(cold.allocs[0].what, "Vec::new");
        assert!(!cold.allocs[0].literal_hot);
        let whats: Vec<&str> = cold.panics.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&"`unwrap()`"), "{whats:?}");
        assert!(whats.contains(&"`panic!`"), "{whats:?}");
        assert!(whats.contains(&"computed index"), "{whats:?}");
        let hot = info.fns.iter().find(|f| f.name == "hot_caller").unwrap();
        assert_eq!(hot.calls.len(), 1);
        assert_eq!(info.hot.len(), 1);
    }

    #[test]
    fn trait_signatures_without_bodies_are_skipped() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { self.sig(); } }";
        let info = one("crates/cpu/src/x.rs", src);
        let names: Vec<&str> = info.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn impl_type_strips_generics_and_trait() {
        let src = "\
impl<'a, R: Recorder> Engine<'a, R> { fn run(&mut self) {} }
impl Default for Config { fn default() -> Self { Config::new() } }
";
        let info = one("crates/cpu/src/x.rs", src);
        assert_eq!(info.fns[0].qualifier.as_deref(), Some("Engine"));
        assert_eq!(info.fns[1].qualifier.as_deref(), Some("Config"));
    }
}
