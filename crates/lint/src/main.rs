//! CLI entry point. See `--help` for usage; `DESIGN.md` § "Static
//! analysis" for the rules.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hbat_lint::diag::{render_json, Rule, ALL_RULES};
use hbat_lint::rules::LintOptions;
use hbat_lint::{baseline, lint_workspace, walk};

const USAGE: &str = "\
hbat-lint: workspace static analysis (determinism, hot-path, panics, shims)

USAGE: hbat-lint [OPTIONS]

OPTIONS:
  --root <DIR>        workspace root (default: nearest ancestor with a
                      [workspace] Cargo.toml)
  --baseline <FILE>   baseline path (default: <root>/lint.baseline)
  --write-baseline    rewrite the baseline to the current findings, exit 0
  --only <RULES>      run only these rules (comma-separated names/codes)
  --skip <RULES>      run all but these rules
  --json              machine-readable output
  --list-rules        print the rule table and exit
  -h, --help          this text

Exits non-zero when any finding is not covered by the baseline.
";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    json: bool,
    list_rules: bool,
    mask: u8,
}

fn parse_rules(list: &str) -> Result<u8, String> {
    let mut mask = 0u8;
    for part in list.split(',') {
        mask |= Rule::parse_mask(part)
            .ok_or_else(|| format!("unknown rule {:?} (try --list-rules)", part.trim()))?;
    }
    Ok(mask)
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        write_baseline: false,
        json: false,
        list_rules: false,
        mask: ALL_RULES.iter().map(|r| r.bit()).fold(0, |a, b| a | b),
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--only" => {
                args.mask = parse_rules(&it.next().ok_or("--only needs rule names")?)?;
            }
            "--skip" => {
                args.mask &= !parse_rules(&it.next().ok_or("--skip needs rule names")?)?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

/// Nearest ancestor of `start` whose Cargo.toml declares a workspace.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<ExitCode, String> {
    let Some(args) = parse_args()? else {
        return Ok(ExitCode::SUCCESS);
    };

    if args.list_rules {
        for r in ALL_RULES {
            println!("{}  {:<12} bit {}", r.code(), r.name(), r.bit());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_root(&cwd)
                // Fall back to the workspace this binary was built from.
                .or_else(|| {
                    Path::new(env!("CARGO_MANIFEST_DIR"))
                        .parent()
                        .and_then(Path::parent)
                        .map(Path::to_path_buf)
                })
                .ok_or("no [workspace] Cargo.toml found; pass --root")?
        }
    };

    let files = walk::collect_files(&root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let opts = LintOptions {
        rule_mask: args.mask,
    };
    let findings = lint_workspace(&files, &opts);

    let baseline_path = args.baseline.unwrap_or_else(|| root.join("lint.baseline"));
    if args.write_baseline {
        fs::write(&baseline_path, baseline::render(&findings))
            .map_err(|e| format!("writing {baseline_path:?}: {e}"))?;
        eprintln!(
            "wrote {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let base = match fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(_) => Default::default(),
    };
    let marked = baseline::mark_new(findings, &base);
    let new = marked.iter().filter(|(_, n)| *n).count();

    if args.json {
        println!("{}", render_json(&marked));
    } else {
        for (d, is_new) in &marked {
            println!("{}{}", d, if *is_new { "  [new]" } else { "" });
        }
        eprintln!(
            "hbat-lint: {} finding(s), {} new ({} baselined)",
            marked.len(),
            new,
            marked.len() - new
        );
    }
    Ok(if new == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hbat-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
