//! CLI entry point. See `--help` for usage; `DESIGN.md` § "Static
//! analysis" for the rules.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hbat_lint::diag::{render_json, Rule, ALL_RULES};
use hbat_lint::rules::LintOptions;
use hbat_lint::{baseline, lint_workspace, walk};

const USAGE: &str = "\
hbat-lint: workspace static analysis (determinism, hot-path, panics, shims,
hot propagation, panic reachability)

USAGE: hbat-lint [OPTIONS]

OPTIONS:
  --root <DIR>        workspace root (default: nearest ancestor with a
                      [workspace] Cargo.toml)
  --baseline <FILE>   baseline path (default: <root>/lint.baseline)
  --write-baseline    rewrite the baseline to the current findings, exit 0
  --only <RULES>      run only these rules (comma-separated names/codes)
  --skip <RULES>      run all but these rules
  --json              machine-readable output
  --graph             dump the workspace call graph (nodes, edges, hot set,
                      panic-reachable set, ambiguity bucket) as JSON and exit
  --list-rules        print the rule table and exit
  -h, --help          this text

Exits non-zero when any finding is not covered by the baseline, or when
the baseline has stale entries (drift is reported as +added/-removed).
";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    json: bool,
    graph: bool,
    list_rules: bool,
    mask: u8,
}

fn parse_rules(list: &str) -> Result<u8, String> {
    let mut mask = 0u8;
    for part in list.split(',') {
        mask |= Rule::parse_mask(part)
            .ok_or_else(|| format!("unknown rule {:?} (try --list-rules)", part.trim()))?;
    }
    Ok(mask)
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        write_baseline: false,
        json: false,
        graph: false,
        list_rules: false,
        mask: ALL_RULES.iter().map(|r| r.bit()).fold(0, |a, b| a | b),
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--json" => args.json = true,
            "--graph" => args.graph = true,
            "--list-rules" => args.list_rules = true,
            "--only" => {
                args.mask = parse_rules(&it.next().ok_or("--only needs rule names")?)?;
            }
            "--skip" => {
                args.mask &= !parse_rules(&it.next().ok_or("--skip needs rule names")?)?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

/// Nearest ancestor of `start` whose Cargo.toml declares a workspace.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<ExitCode, String> {
    let Some(args) = parse_args()? else {
        return Ok(ExitCode::SUCCESS);
    };

    if args.list_rules {
        for r in ALL_RULES {
            println!("{}  {:<12} bit {}", r.code(), r.name(), r.bit());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_root(&cwd)
                // Fall back to the workspace this binary was built from.
                .or_else(|| {
                    Path::new(env!("CARGO_MANIFEST_DIR"))
                        .parent()
                        .and_then(Path::parent)
                        .map(Path::to_path_buf)
                })
                .ok_or("no [workspace] Cargo.toml found; pass --root")?
        }
    };

    let files = walk::collect_files(&root).map_err(|e| format!("walking {root:?}: {e}"))?;

    if args.graph {
        let ws = hbat_lint::analyze_workspace(&files);
        println!(
            "{}",
            hbat_lint::graph::render_graph_json(&ws.files, &ws.graph, &ws.propagation)
        );
        return Ok(ExitCode::SUCCESS);
    }

    let opts = LintOptions {
        rule_mask: args.mask,
    };
    let findings = lint_workspace(&files, &opts);

    let baseline_path = args.baseline.unwrap_or_else(|| root.join("lint.baseline"));
    if args.write_baseline {
        fs::write(&baseline_path, baseline::render(&findings))
            .map_err(|e| format!("writing {baseline_path:?}: {e}"))?;
        eprintln!(
            "wrote {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let base = match fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(_) => Default::default(),
    };
    let drift = baseline::diff(findings, &base);
    let new = drift.marked.iter().filter(|(_, n)| *n).count();

    if args.json {
        println!("{}", render_json(&drift.marked));
    } else {
        for (d, is_new) in &drift.marked {
            println!("{}{}", d, if *is_new { "  [new]" } else { "" });
        }
        eprintln!(
            "hbat-lint: {} finding(s), {} new ({} baselined), {} stale baseline entr{}",
            drift.marked.len(),
            new,
            drift.marked.len() - new,
            drift.stale.len(),
            if drift.stale.len() == 1 { "y" } else { "ies" },
        );
    }
    // Report drift in both directions as an explicit diff: `+` findings
    // the baseline does not cover, `-` baseline entries no longer
    // produced (fix: rerun with --write-baseline after review).
    if new > 0 || !drift.stale.is_empty() {
        for (d, is_new) in &drift.marked {
            if *is_new {
                eprintln!("+ {}", d.baseline_key());
            }
        }
        for key in &drift.stale {
            eprintln!("- {key}");
        }
    }
    Ok(if new == 0 && drift.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hbat-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
