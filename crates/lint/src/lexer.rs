//! A minimal Rust lexer — exactly enough fidelity for the lint rules.
//!
//! Comments (line, nested block), strings (plain, raw, byte, byte-raw),
//! char literals vs lifetimes, raw identifiers, and numbers are tokenized
//! correctly so that rule matching never fires on text inside a string or
//! comment. Everything else is single-character punctuation. No `syn`:
//! the workspace builds without registry access, and the rules only need
//! token streams, not syntax trees.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// `'a`, `'static` — a quote not closed by another quote.
    Lifetime,
    /// `'x'`, `'\n'`, `b'0'`.
    CharLit,
    /// `"…"`, `r#"…"#`, `b"…"`.
    StrLit,
    /// `0x1F`, `1.5e-3`, `12_000u64`.
    NumLit,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting respected (doc comments included).
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The lexeme for identifiers and comments; for `Punct` the single
    /// character; empty for literals (rules never inspect literal text).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// True when this token is the first token on its source line.
    pub first_on_line: bool,
}

impl Token {
    /// Is this token the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this a comment token (line or block)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: a lint
/// tool must degrade gracefully on code that `rustc` will reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        s: src.as_bytes(),
        i: 0,
        line: 1,
        first: true,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    first: bool,
    out: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.s.len() {
            let b = self.s[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.first = true;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn emit(&mut self, kind: TokenKind, start_line: u32, text: String) {
        self.out.push(Token {
            kind,
            text,
            line: start_line,
            first_on_line: self.first,
        });
        self.first = false;
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.s.len() && self.s[self.i] != b'\n' {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.emit(TokenKind::LineComment, line, text);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.s.len() && depth > 0 {
            if self.s[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if self.s[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.s[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.out.push(Token {
            kind: TokenKind::BlockComment,
            text,
            line,
            first_on_line: self.first,
        });
        // A block comment does not claim the "first on line" slot for
        // what follows it on the same line only if it spans lines; keep
        // it simple: anything after a comment is not first.
        self.first = false;
    }

    /// Handles `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'c'`, and raw
    /// identifiers `r#ident`. Returns false if the `r`/`b` starts a plain
    /// identifier (caller falls through to other arms — but since this is
    /// called from the dispatch loop, it lexes the identifier itself and
    /// returns true in every consumed case).
    fn raw_or_byte_literal(&mut self) -> bool {
        let b0 = self.s[self.i];
        match (b0, self.peek(1), self.peek(2)) {
            // b'c' byte char literal.
            (b'b', Some(b'\''), _) => {
                self.i += 1;
                self.char_literal();
                true
            }
            // b"…" byte string.
            (b'b', Some(b'"'), _) => {
                self.i += 1;
                self.string();
                true
            }
            // br"…" / br#"…"# raw byte string.
            (b'b', Some(b'r'), Some(b'"' | b'#')) => {
                self.i += 2;
                self.raw_string();
                true
            }
            // r"…" raw string.
            (b'r', Some(b'"'), _) => {
                self.i += 1;
                self.raw_string();
                true
            }
            (b'r', Some(b'#'), Some(n)) => {
                // Disambiguate r#"…"# (raw string) from r#ident (raw
                // identifier). Any number of hashes before the quote is a
                // raw string; `r#` followed by an identifier start is a
                // raw identifier.
                let mut j = self.i + 1;
                while self.s.get(j) == Some(&b'#') {
                    j += 1;
                }
                if self.s.get(j) == Some(&b'"') {
                    self.i += 1;
                    self.raw_string();
                    true
                } else if is_ident_start(n) {
                    // Raw identifier: emit without the r# prefix so rules
                    // treat `r#type` as the identifier `type`.
                    self.i += 2;
                    self.ident();
                    true
                } else {
                    self.ident();
                    true
                }
            }
            _ => {
                self.ident();
                true
            }
        }
    }

    /// At a `"`: plain (escaped) string literal.
    fn string(&mut self) {
        let line = self.line;
        self.i += 1; // opening quote
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => {
                    // A line continuation (`\` before a newline) still
                    // ends a source line.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.emit(TokenKind::StrLit, line, String::new());
    }

    /// At the first `#` or `"` of a raw string (the `r`/`br` prefix is
    /// already consumed).
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        'scan: while self.i < self.s.len() {
            if self.s[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.s[self.i] == b'"' {
                // Need `hashes` hashes to close.
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        self.i += 1;
                        continue 'scan;
                    }
                }
                self.i += 1 + hashes;
                break;
            }
            self.i += 1;
        }
        self.emit(TokenKind::StrLit, line, String::new());
    }

    /// At a `'`: either a lifetime (`'a`) or a char literal (`'a'`).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(b'\\') => self.char_literal(),
            Some(n) if is_ident_start(n) => {
                // `'a` … scan the identifier; a trailing quote makes it a
                // char literal ('a'), otherwise it is a lifetime ('a).
                let mut j = self.i + 1;
                while self.s.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.s.get(j) == Some(&b'\'') {
                    self.char_literal();
                } else {
                    let line = self.line;
                    let text = String::from_utf8_lossy(&self.s[self.i + 1..j]).into_owned();
                    self.i = j;
                    self.emit(TokenKind::Lifetime, line, text);
                }
            }
            _ => self.char_literal(),
        }
    }

    /// At the opening `'` of a char literal; consumes through the closing
    /// quote. Handles `'\''`, `'\\'`, `'\u{…}'`, and multi-byte chars.
    fn char_literal(&mut self) {
        let line = self.line;
        self.i += 1; // opening quote
        if self.peek(0) == Some(b'\\') {
            if self.peek(1) == Some(b'\n') {
                // Invalid Rust, but arbitrary input must keep the line
                // count honest.
                self.line += 1;
            }
            self.i += 2; // backslash + escape head (n, t, ', \, x, u, …)
            if self.s.get(self.i - 1) == Some(&b'u') && self.peek(0) == Some(b'{') {
                while self.i < self.s.len() && self.s[self.i] != b'}' {
                    self.i += 1;
                }
                self.i += 1;
            } else if self.s.get(self.i - 1) == Some(&b'x') {
                self.i += 2; // two hex digits
            }
        } else {
            // One (possibly multi-byte) character; a raw newline here is
            // invalid Rust but must still advance the line count.
            if self.peek(0) == Some(b'\n') {
                self.line += 1;
            }
            self.i += 1;
            while self.i < self.s.len() && (self.s[self.i] & 0xC0) == 0x80 {
                self.i += 1; // UTF-8 continuation bytes
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.i += 1;
        }
        self.emit(TokenKind::CharLit, line, String::new());
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.s.len() && is_ident_continue(self.s[self.i]) {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.emit(TokenKind::Ident, line, text);
    }

    fn number(&mut self) {
        let line = self.line;
        while self.i < self.s.len() {
            let b = self.s[self.i];
            if is_ident_continue(b) {
                // Exponent sign: 1e-3 / 2.5E+7.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.i += 2;
                }
                self.i += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Decimal point — but never eat `..` ranges.
                self.i += 1;
            } else {
                break;
            }
        }
        self.emit(TokenKind::NumLit, line, String::new());
    }

    fn punct(&mut self) {
        let line = self.line;
        let b = self.s[self.i];
        if b < 0x80 {
            self.i += 1;
            self.emit(TokenKind::Punct, line, (b as char).to_string());
        } else {
            // A stray non-ASCII char outside any literal: consume the
            // whole UTF-8 sequence as one punct.
            self.i += 1;
            while self.i < self.s.len() && (self.s[self.i] & 0xC0) == 0x80 {
                self.i += 1;
            }
            self.emit(TokenKind::Punct, line, "?".to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() {}");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "main".into()));
        assert_eq!(toks[2], (TokenKind::Punct, "(".into()));
    }

    #[test]
    fn line_comment_captures_text_and_line() {
        let toks = lex("let x = 1; // trailing note\nlet y = 2;");
        let c = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert_eq!(c.text, "// trailing note");
        assert_eq!(c.line, 1);
        assert!(!c.first_on_line);
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn strings_hide_their_content() {
        let toks = kinds(r#"let s = "contains unwrap() and // not a comment";"#);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::StrLit).count(), 1);
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let t = 1;"###);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::StrLit).count(), 1);
        assert!(toks.iter().any(|t| t.1 == "t"));
        // Double-hash raw string containing a single-hash close.
        let toks = kinds("r##\"inner \"# still\"## after");
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r#"b"bytes" br"raw" b'x' x"#);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[1].0, TokenKind::StrLit);
        assert_eq!(toks[2].0, TokenKind::CharLit);
        assert_eq!(toks[3], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c = 'a'; fn f<'a>(x: &'a str) {} 'x'");
        let chars = toks.iter().filter(|t| t.0 == TokenKind::CharLit).count();
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.1 == "a"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"'\'' '\\' '\n' '\u{1F600}' '\x41' after");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::CharLit).count(), 5);
        assert_eq!(toks.last().unwrap().1, "after");
    }

    #[test]
    fn static_lifetime_and_labels() {
        let toks = kinds("&'static str; 'outer: loop { break 'outer; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Lifetime)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(lifetimes, vec!["static", "outer", "outer"]);
    }

    #[test]
    fn multibyte_char_literal() {
        let toks = kinds("let bar = '█'; done");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::CharLit).count(), 1);
        assert_eq!(toks.last().unwrap().1, "done");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 1..5 { 2.5e-3; 1.max(2); 0x1F_u64 }");
        assert!(toks.iter().any(|t| t.1 == "max"));
        // `1..5` produces two numbers and two dots.
        let dots = toks.iter().filter(|t| t.1 == ".").count();
        assert!(dots >= 3, "range dots plus method dot: {dots}");
    }

    #[test]
    fn raw_identifier_is_plain_ident() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "type"));
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::StrLit);
    }

    #[test]
    fn escaped_newline_in_string_counts_the_line() {
        let toks = lex("let s = \"a \\\nb\";\nlet t = 1;");
        let t = toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn first_on_line_tracking() {
        let toks = lex("a b\n  c d");
        assert!(toks[0].first_on_line);
        assert!(!toks[1].first_on_line);
        assert!(toks[2].first_on_line);
        assert!(!toks[3].first_on_line);
    }
}
