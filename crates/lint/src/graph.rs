//! The workspace call graph: nodes are parsed function definitions,
//! edges are call sites resolved with a pragmatic name-resolution
//! heuristic.
//!
//! Resolution order for a path call `foo(…)` (see DESIGN.md § 12 for
//! the rationale and known ambiguity cases):
//!
//! 1. **Same module** — a definition with that name in the caller's own
//!    module (same crate, same module path);
//! 2. **Imports** — the caller file's `use` map; an import whose first
//!    segment is not a workspace crate (std, shims, externals) resolves
//!    to "external" and stops the search;
//! 3. **Qualified paths** — `Type::method` / `module::f` filter by the
//!    written qualifier against impl-type names, module tails, and
//!    crate names;
//! 4. **Unique name** — a bare name defined exactly once in the whole
//!    workspace resolves to that definition;
//! 5. Anything with several surviving candidates lands in the explicit
//!    `ambiguous` bucket, which is *reported*, never silently dropped.
//!
//! Method calls `recv.foo(…)` resolve through `self` receivers (same
//! impl type), then unique method name in the workspace — except for
//! names on the std-method denylist (`push`, `get`, `len`, …), which
//! are overwhelmingly standard-library calls and would otherwise draw
//! false edges from every container touch.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{Callee, FileInfo};

/// Method names that are almost always std/core calls; a workspace
/// method with one of these names never captures dot-call edges (it can
/// still be reached through `Type::name(…)` qualified calls).
const STD_METHOD_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "try_into",
    "try_from",
    "to_string",
    "to_owned",
    "to_vec",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "filter",
    "collect",
    "extend",
    "drain",
    "keys",
    "values",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "binary_search",
    "split",
    "join",
    "parse",
    "trim",
    "starts_with",
    "ends_with",
    "min",
    "max",
    "abs",
    "take",
    "replace",
    "swap",
    "resize",
    "reserve",
    "truncate",
    "last",
    "first",
    "count",
    "sum",
    "any",
    "all",
    "find",
    "position",
    "zip",
    "rev",
    "enumerate",
    "chain",
    "flat_map",
    "fold",
    "retain",
    "entry",
    "or_insert",
    "or_default",
    "write",
    "read",
    "flush",
    "lock",
    "send",
    "recv",
    "load",
    "store",
    "fetch_add",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "min_by_key",
    "max_by_key",
    "copy_from_slice",
    "fill",
    "windows",
    "chunks",
];

/// One unresolved call with several surviving candidates.
#[derive(Debug, Clone)]
pub struct Ambiguity {
    /// Caller node index.
    pub caller: usize,
    /// The name as written at the call site.
    pub written: String,
    pub line: u32,
    /// Candidate node indices (sorted).
    pub candidates: Vec<usize>,
}

/// The resolved workspace call graph over `files[*].fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Flat node list: `nodes[i]` is `(file index, fn index)` into the
    /// parsed workspace.
    pub nodes: Vec<(usize, usize)>,
    /// `(caller, callee, call-site line)`, sorted and deduped.
    pub edges: Vec<(usize, usize, u32)>,
    /// Calls with more than one surviving candidate.
    pub ambiguous: Vec<Ambiguity>,
    /// caller → callees adjacency (indices into `nodes`).
    adj: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Successor node indices of `n`.
    pub fn callees(&self, n: usize) -> &[usize] {
        &self.adj[n]
    }

    /// Breadth-first reachable set from `seeds` (seeds included), with
    /// a parent map for witness paths.
    pub fn reach(&self, seeds: &[usize]) -> (BTreeSet<usize>, BTreeMap<usize, usize>) {
        let mut seen: BTreeSet<usize> = seeds.iter().copied().collect();
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = seeds.to_vec();
        while let Some(n) = frontier.pop() {
            for &m in self.callees(n) {
                if seen.insert(m) {
                    parent.insert(m, n);
                    frontier.push(m);
                }
            }
        }
        (seen, parent)
    }

    /// Witness chain `seed → … → n` as fn ids, using a parent map.
    pub fn chain(&self, files: &[FileInfo], parent: &BTreeMap<usize, usize>, n: usize) -> String {
        let mut names = vec![self.fn_name(files, n)];
        let mut cur = n;
        while let Some(&p) = parent.get(&cur) {
            names.push(self.fn_name(files, p));
            cur = p;
            if names.len() > 12 {
                names.push("…".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Short display name (`Type::name` or `name`) of a node.
    pub fn fn_name(&self, files: &[FileInfo], n: usize) -> String {
        let (fi, di) = self.nodes[n];
        let f = &files[fi].fns[di];
        match &f.qualifier {
            Some(q) => format!("{q}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Full id of a node.
    pub fn fn_id(&self, files: &[FileInfo], n: usize) -> String {
        let (fi, di) = self.nodes[n];
        files[fi].fns[di].id()
    }
}

/// Builds the call graph over a parsed workspace.
pub fn build(files: &[FileInfo]) -> CallGraph {
    let mut g = CallGraph::default();
    // Node index and lookup tables.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (di, f) in file.fns.iter().enumerate() {
            let n = g.nodes.len();
            g.nodes.push((fi, di));
            by_name.entry(&f.name).or_default().push(n);
            if f.qualifier.is_some() {
                methods.entry(&f.name).or_default().push(n);
            }
        }
    }
    let def = |g: &CallGraph, n: usize| -> &crate::parse::FnDef {
        let (fi, di) = g.nodes[n];
        &files[fi].fns[di]
    };

    let mut edges: BTreeSet<(usize, usize, u32)> = BTreeSet::new();
    for caller in 0..g.nodes.len() {
        let (fi, _) = g.nodes[caller];
        let file = &files[fi];
        let caller_def = def(&g, caller);
        for call in &caller_def.calls {
            let resolved: Result<Option<usize>, Vec<usize>> = match &call.callee {
                Callee::Method { name, on_self } => resolve_method(
                    &g,
                    &methods,
                    name,
                    *on_self,
                    caller_def.qualifier.as_deref(),
                    |n| def(&g, n),
                ),
                Callee::Path(segs) => {
                    resolve_path(&g, &by_name, file, caller_def, segs, |n| def(&g, n))
                }
            };
            match resolved {
                Ok(Some(callee)) => {
                    edges.insert((caller, callee, call.line));
                }
                Ok(None) => {} // external — no edge
                Err(candidates) => {
                    let written = match &call.callee {
                        Callee::Method { name, .. } => format!(".{name}()"),
                        Callee::Path(segs) => segs.join("::"),
                    };
                    g.ambiguous.push(Ambiguity {
                        caller,
                        written,
                        line: call.line,
                        candidates,
                    });
                }
            }
        }
    }
    g.edges = edges.into_iter().collect();
    g.adj = vec![Vec::new(); g.nodes.len()];
    for &(a, b, _) in &g.edges {
        if g.adj[a].last() != Some(&b) {
            g.adj[a].push(b);
        }
    }
    g.ambiguous
        .sort_by(|a, b| (a.caller, a.line, &a.written).cmp(&(b.caller, b.line, &b.written)));
    g
}

/// `Ok(Some(n))` resolved, `Ok(None)` external, `Err(cands)` ambiguous.
type Resolution = Result<Option<usize>, Vec<usize>>;

fn resolve_method<'a>(
    _g: &CallGraph,
    methods: &BTreeMap<&str, Vec<usize>>,
    name: &str,
    on_self: bool,
    caller_qualifier: Option<&str>,
    def: impl Fn(usize) -> &'a crate::parse::FnDef,
) -> Resolution {
    let Some(cands) = methods.get(name) else {
        return Ok(None);
    };
    // `self.foo()` inside `impl Q`: a method `foo` on `Q` wins outright.
    if on_self {
        if let Some(q) = caller_qualifier {
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&n| def(n).qualifier.as_deref() == Some(q))
                .collect();
            if same.len() == 1 {
                return Ok(Some(same[0]));
            }
        }
    }
    if STD_METHOD_DENYLIST.contains(&name) {
        return Ok(None);
    }
    match cands.as_slice() {
        [] => Ok(None),
        [one] => Ok(Some(*one)),
        many => Err(many.to_vec()),
    }
}

fn resolve_path<'a>(
    _g: &CallGraph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    file: &FileInfo,
    caller: &crate::parse::FnDef,
    segs: &[String],
    def: impl Fn(usize) -> &'a crate::parse::FnDef,
) -> Resolution {
    let Some(name) = segs.last() else {
        return Ok(None);
    };
    let Some(cands) = by_name.get(name.as_str()) else {
        return Ok(None);
    };

    // Expand the written path through the import map: `Cache::probe(…)`
    // with `use hbat_mem::cache::Cache;` becomes
    // `hbat_mem::cache::Cache::probe`. `crate`/`self`/`super` heads are
    // rewritten relative to the caller.
    let mut full: Vec<String> = Vec::new();
    match segs[0].as_str() {
        "crate" => {
            full.push(caller.crate_name.clone());
            full.extend(segs[1..].iter().cloned());
        }
        "self" => {
            full.push(caller.crate_name.clone());
            full.extend(caller.module.iter().cloned());
            full.extend(segs[1..].iter().cloned());
        }
        "super" => {
            full.push(caller.crate_name.clone());
            let up = caller.module.len().saturating_sub(1);
            full.extend(caller.module[..up].iter().cloned());
            full.extend(segs[1..].iter().cloned());
        }
        head => match file.imports.get(head) {
            Some(path) => {
                full.extend(path.iter().cloned());
                full.extend(segs[1..].iter().cloned());
            }
            None => full.extend(segs.iter().cloned()),
        },
    }

    // An import that leads into std/core is external, full stop.
    if full.len() > 1 {
        if let Some(head) = full.first() {
            if matches!(head.as_str(), "std" | "core" | "alloc") {
                return Ok(None);
            }
        }
    }

    // Qualified call: filter candidates by the written qualifier — an
    // impl type name, a module tail, or a crate name.
    if full.len() >= 2 {
        let quals = &full[..full.len() - 1];
        let filtered: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&n| qualifier_matches(def(n), quals))
            .collect();
        match filtered.as_slice() {
            [] => {
                // A fully-qualified path that matches nothing in the
                // workspace is an external call (std type methods,
                // shim items, enum variant constructors).
                return Ok(None);
            }
            [one] => return Ok(Some(*one)),
            many => {
                // Prefer the caller's own crate, then its module.
                let near: Vec<usize> = many
                    .iter()
                    .copied()
                    .filter(|&n| def(n).crate_name == caller.crate_name)
                    .collect();
                if near.len() == 1 {
                    return Ok(Some(near[0]));
                }
                return Err(many.to_vec());
            }
        }
    }

    // Bare name: same module first.
    let same_module: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&n| {
            let d = def(n);
            d.crate_name == caller.crate_name && d.module == caller.module
        })
        .collect();
    // Inside an impl block, a bare sibling name never refers to a
    // method (methods need `self.`/`Self::`); prefer free functions.
    let free_same_module: Vec<usize> = same_module
        .iter()
        .copied()
        .filter(|&n| def(n).qualifier.is_none())
        .collect();
    match free_same_module.as_slice() {
        [one] => return Ok(Some(*one)),
        [] => {}
        many => return Err(many.to_vec()),
    }

    // Unique free name in the workspace.
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&n| def(n).qualifier.is_none())
        .collect();
    match free.as_slice() {
        [] => Ok(None),
        [one] => Ok(Some(*one)),
        many => Err(many.to_vec()),
    }
}

/// Does a definition match the written qualifier segments? The last
/// written qualifier must equal the impl type (for methods) or the last
/// module segment (for free fns); earlier segments must appear, in
/// order, in the def's crate+module path.
fn qualifier_matches(def: &crate::parse::FnDef, quals: &[String]) -> bool {
    let Some(last) = quals.last() else {
        return true;
    };
    let mut path: Vec<&str> = vec![def.crate_name.as_str()];
    path.extend(def.module.iter().map(String::as_str));
    let tail_matches = |upto: &[&str], written: &[String]| -> bool {
        // every written segment (minus crate heads) appears in order
        let mut it = upto.iter();
        written
            .iter()
            .all(|w| it.any(|p| *p == w.as_str() || format!("hbat_{w}") == *p))
    };
    match &def.qualifier {
        Some(q) => {
            // `Type::method` or `module::Type::method`.
            q == last && tail_matches(&path, &quals[..quals.len() - 1])
        }
        None => {
            // `module::f` / `crate_name::f`.
            (path.last() == Some(&last.as_str())
                || path.contains(&last.as_str())
                || format!("hbat_{last}") == def.crate_name)
                && tail_matches(&path, &quals[..quals.len() - 1])
        }
    }
}

/// Renders the call graph, hot set, panic-reachable set, and ambiguity
/// bucket as a JSON document (the `--graph` CLI mode and CI artifact).
pub fn render_graph_json(
    files: &[FileInfo],
    g: &CallGraph,
    p: &crate::propagate::Propagation,
) -> String {
    use crate::diag::json_escape as esc;
    use std::collections::BTreeSet;

    let hot: BTreeSet<usize> = p.hot.iter().copied().collect();
    let reach: BTreeSet<usize> = p.panic_reachable.iter().copied().collect();
    let crates: BTreeSet<&str> = files.iter().map(|f| f.crate_name.as_str()).collect();

    let mut out = String::from("{\n  \"schema\": 1,\n  \"crates\": [");
    for (i, c) in crates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&esc(c));
    }
    out.push_str("],\n  \"nodes\": [\n");
    for (n, &(fi, di)) in g.nodes.iter().enumerate() {
        let f = &files[fi].fns[di];
        out.push_str(&format!(
            "    {{\"id\": {}, \"file\": {}, \"line\": {}, \"crate\": {}, \"hot\": {}, \
             \"panic_reachable\": {}}}{}\n",
            esc(&f.id()),
            esc(&f.file),
            f.line,
            esc(&f.crate_name),
            hot.contains(&n),
            reach.contains(&n),
            if n + 1 < g.nodes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"edges\": [\n");
    for (i, &(a, b, line)) in g.edges.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"from\": {}, \"to\": {}, \"line\": {}}}{}\n",
            esc(&g.fn_id(files, a)),
            esc(&g.fn_id(files, b)),
            line,
            if i + 1 < g.edges.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"hot\": [\n");
    for (i, &n) in p.hot.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            esc(&g.fn_id(files, n)),
            if i + 1 < p.hot.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"panic_reachable\": [\n");
    for (i, &n) in p.panic_reachable.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            esc(&g.fn_id(files, n)),
            if i + 1 < p.panic_reachable.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n  \"ambiguous\": [\n");
    for (i, amb) in g.ambiguous.iter().enumerate() {
        let cands: Vec<String> = amb
            .candidates
            .iter()
            .map(|&c| esc(&g.fn_id(files, c)))
            .collect();
        out.push_str(&format!(
            "    {{\"caller\": {}, \"written\": {}, \"line\": {}, \"candidates\": [{}]}}{}\n",
            esc(&g.fn_id(files, amb.caller)),
            esc(&amb.written),
            amb.line,
            cands.join(", "),
            if i + 1 < g.ambiguous.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"counts\": {{\"nodes\": {}, \"edges\": {}, \"hot\": {}, \
         \"panic_reachable\": {}, \"ambiguous\": {}}}\n}}",
        g.nodes.len(),
        g.edges.len(),
        p.hot.len(),
        p.panic_reachable.len(),
        g.ambiguous.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_workspace;

    fn ws(files: &[(&str, &str)]) -> (Vec<FileInfo>, CallGraph) {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let parsed = parse_workspace(&owned);
        let g = build(&parsed);
        (parsed, g)
    }

    fn edge_ids(files: &[FileInfo], g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|&(a, b, _)| (g.fn_id(files, a), g.fn_id(files, b)))
            .collect()
    }

    #[test]
    fn same_module_resolution_wins() {
        let (files, g) = ws(&[("crates/cpu/src/x.rs", "fn a() { b(); }\nfn b() {}\n")]);
        assert_eq!(
            edge_ids(&files, &g),
            vec![("hbat_cpu::x::a".to_string(), "hbat_cpu::x::b".to_string())]
        );
    }

    #[test]
    fn import_resolution_crosses_crates() {
        let (files, g) = ws(&[
            (
                "crates/cpu/src/engine.rs",
                "use hbat_mem::probe_cache;\nfn step() { probe_cache(); }\n",
            ),
            ("crates/mem/src/lib.rs", "pub fn probe_cache() {}\n"),
        ]);
        assert_eq!(
            edge_ids(&files, &g),
            vec![(
                "hbat_cpu::engine::step".to_string(),
                "hbat_mem::probe_cache".to_string()
            )]
        );
    }

    #[test]
    fn std_imports_are_external() {
        let (_, g) = ws(&[
            (
                "crates/cpu/src/x.rs",
                "use std::cmp::min;\nfn f() { min(1, 2); }\n",
            ),
            ("crates/mem/src/lib.rs", "pub fn min() {}\n"),
        ]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn unique_name_fallback() {
        let (files, g) = ws(&[
            ("crates/cpu/src/x.rs", "fn f() { helper_unique(); }\n"),
            ("crates/mem/src/y.rs", "pub fn helper_unique() {}\n"),
        ]);
        assert_eq!(
            edge_ids(&files, &g),
            vec![(
                "hbat_cpu::x::f".to_string(),
                "hbat_mem::y::helper_unique".to_string()
            )]
        );
    }

    #[test]
    fn duplicate_bare_names_are_ambiguous_not_dropped() {
        let (_, g) = ws(&[
            ("crates/cpu/src/x.rs", "fn f() { dup(); }\n"),
            ("crates/mem/src/y.rs", "pub fn dup() {}\n"),
            ("crates/core/src/z.rs", "pub fn dup() {}\n"),
        ]);
        assert!(g.edges.is_empty());
        assert_eq!(g.ambiguous.len(), 1);
        assert_eq!(g.ambiguous[0].written, "dup");
        assert_eq!(g.ambiguous[0].candidates.len(), 2);
    }

    #[test]
    fn qualified_type_method_resolution() {
        let (files, g) = ws(&[
            (
                "crates/cpu/src/x.rs",
                "use hbat_mem::Cache;\nfn f() { Cache::probe(); }\n",
            ),
            (
                "crates/mem/src/lib.rs",
                "pub struct Cache;\nimpl Cache { pub fn probe() {} }\n",
            ),
        ]);
        assert_eq!(
            edge_ids(&files, &g),
            vec![(
                "hbat_cpu::x::f".to_string(),
                "hbat_mem::Cache::probe".to_string()
            )]
        );
    }

    #[test]
    fn self_method_call_resolves_within_impl() {
        let (files, g) = ws(&[(
            "crates/cpu/src/x.rs",
            "struct S;\nimpl S { fn a(&self) { self.b(); } fn b(&self) {} }\n",
        )]);
        assert_eq!(
            edge_ids(&files, &g),
            vec![(
                "hbat_cpu::x::S::a".to_string(),
                "hbat_cpu::x::S::b".to_string()
            )]
        );
    }

    #[test]
    fn denylisted_method_names_draw_no_edges() {
        let (_, g) = ws(&[
            (
                "crates/cpu/src/x.rs",
                "fn f(v: &mut Vec<u32>) { v.push(1); }\n",
            ),
            (
                "crates/mem/src/lib.rs",
                "pub struct Q;\nimpl Q { pub fn push(&mut self, x: u32) {} }\n",
            ),
        ]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn unique_method_name_resolves() {
        let (files, g) = ws(&[
            (
                "crates/cpu/src/x.rs",
                "fn f(c: &Cache) { c.probe_line(0); }\n",
            ),
            (
                "crates/mem/src/lib.rs",
                "pub struct Cache;\nimpl Cache { pub fn probe_line(&self, a: u64) {} }\n",
            ),
        ]);
        assert_eq!(
            edge_ids(&files, &g),
            vec![(
                "hbat_cpu::x::f".to_string(),
                "hbat_mem::Cache::probe_line".to_string()
            )]
        );
    }

    #[test]
    fn reach_and_chain() {
        let (files, g) = ws(&[(
            "crates/cpu/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n",
        )]);
        let a = (0..g.nodes.len())
            .find(|&n| g.fn_name(&files, n) == "a")
            .unwrap();
        let (seen, parent) = g.reach(&[a]);
        assert_eq!(seen.len(), 3);
        let c = (0..g.nodes.len())
            .find(|&n| g.fn_name(&files, n) == "c")
            .unwrap();
        assert_eq!(g.chain(&files, &parent, c), "a -> b -> c");
    }
}
