//! # hbat-suite — High-Bandwidth Address Translation for Multiple-Issue Processors
//!
//! A full reproduction of Austin & Sohi's ISCA 1996 paper, as a Rust
//! workspace. This facade crate re-exports the whole stack:
//!
//! * `core` — the paper's contribution: multi-ported,
//!   interleaved, multi-level, piggybacked, and pretranslation TLB designs
//!   behind one cycle-level [`AddressTranslator`](hbat_core::AddressTranslator)
//!   trait, plus the page table and replacement policies;
//! * `isa` — the simulated MIPS-like instruction set and the
//!   functional executor that produces dynamic traces;
//! * `workloads` — ten synthetic analogues of the
//!   paper's benchmarks, built by a spilling register assigner;
//! * `mem` — the 32 KB split caches;
//! * `cpu` — the 8-way in-order/out-of-order timing engine
//!   with speculative wrong-path execution;
//! * `obs` — zero-cost observability: the statically-dispatched
//!   [`Recorder`](hbat_obs::Recorder) probes, stall attribution, and
//!   occupancy histograms;
//! * `stats` — aggregation and table rendering;
//! * `ckpt` — crash-safe checkpointing: versioned, checksummed
//!   warm-state snapshots with verified restore (DESIGN.md § 13);
//! * `bench` — the harness that regenerates every table and
//!   figure;
//! * `analysis` — trace anatomy: reuse distance,
//!   same-page adjacency, pointer-register reuse.
//!
//! ## Quick start
//!
//! ```
//! use hbat_suite::prelude::*;
//!
//! // Build the paper's M8 design and one benchmark, then measure IPC.
//! let workload = Benchmark::Espresso.build(&WorkloadConfig::new(Scale::Test));
//! let trace = workload.trace();
//! let mut tlb = DesignSpec::parse("M8")?.build(PageGeometry::KB4, 1996);
//! let metrics = simulate(&SimConfig::baseline(), &trace, tlb.as_mut());
//! assert!(metrics.ipc() > 0.5);
//! # Ok::<(), hbat_core::designs::spec::ParseDesignError>(())
//! ```

pub use hbat_analysis as analysis;
pub use hbat_bench as bench;
pub use hbat_ckpt as ckpt;
pub use hbat_core as core;
pub use hbat_cpu as cpu;
pub use hbat_isa as isa;
pub use hbat_mem as mem;
pub use hbat_obs as obs;
pub use hbat_stats as stats;
pub use hbat_workloads as workloads;

/// The names most users need, in one import.
pub mod prelude {
    pub use hbat_analysis::{AdjacencyProfile, PointerProfile, ReuseProfile};
    pub use hbat_bench::experiment::{sweep, sweep_table2, ExperimentConfig};
    pub use hbat_core::designs::spec::DesignSpec;
    pub use hbat_core::{
        AddressTranslator, Cycle, Outcome, PageGeometry, PageTable, TranslateRequest,
    };
    pub use hbat_cpu::{simulate, simulate_with_recorder, IssueModel, RunMetrics, SimConfig};
    pub use hbat_isa::{Machine, Program};
    pub use hbat_obs::{NullRecorder, Recorder, StallCause, TraceRecorder};
    pub use hbat_workloads::{Benchmark, RegBudget, Scale, Workload, WorkloadConfig};
}
