//! `hbat` — the command-line front end to the reproduction suite.
//!
//! ```text
//! hbat list                             designs and benchmarks
//! hbat run <bench> <design> [opts]      one timing simulation
//! hbat trace <bench> <design> [opts]    one run with stall attribution
//! hbat sweep [opts]                     all 13 designs × 10 benchmarks
//! hbat anatomy <bench> [opts]           trace-anatomy ceilings
//! hbat dump <bench> <file> [opts]       write a binary trace file
//! hbat replay <file> <design> [opts]    simulate a dumped trace
//! hbat ckpt <file> [--json]             inspect and verify a snapshot
//! hbat perfdb add [reports…] [opts]     append BENCH reports to the perf DB
//! hbat perfdb check [reports…] [opts]   gate reports against the frozen baseline
//!
//! options: --scale test|small|reference   (default small)
//!          --inorder                      in-order issue
//!          --pages-8k                     8 KB pages
//!          --small-regs                   8 int / 8 fp registers
//!          --seed N                       design replacement seed
//!          --prof                         self-profile phases to stderr
//!                                         (equivalent to HBAT_PROF=1)
//!
//! trace observability (see DESIGN.md § 10 and § 14):
//!          --out <path>                   write the JSONL event stream (with
//!                                         --intervals: the interval stream)
//!          --intervals <n>                bucket the run into n-cycle windows:
//!                                         table, IPC-over-time chart, summary
//!
//! sweep fault tolerance (see DESIGN.md § 9) and observability:
//!          --journal <path>               append completed cells (JSONL)
//!          --resume                       replay the journal, re-run the rest
//!          --timeout <secs>               per-cell deadline (HBAT_CELL_TIMEOUT)
//!          --retries <n>                  per-cell retries (HBAT_CELL_RETRIES)
//!          --observe                      per-cell obs sidecar (<journal>.obs.jsonl)
//!          --intervals <n>                per-cell interval sidecar
//!                                         (<journal>.iv.jsonl, needs --journal)
//!          --heartbeat <secs>             progress line interval, 0 = off
//!                                         (HBAT_HEARTBEAT; default: off at test
//!                                         scale, 30 s otherwise)
//!
//! perf database (see DESIGN.md § 14):
//!          --db <path>                    database file (default results/perf.jsonl)
//!          --baseline <path>              frozen baseline for `check`
//!                                         (default results/perf_baseline.jsonl)
//!          --host <tag>                   host tag for `add` (HBAT_HOST)
//!
//! sampled simulation (SMARTS-style; see DESIGN.md § 15):
//!          --sample N[:len[:warmup]]      detailed timing only in N systematic
//!                                         windows of len committed micro-ops
//!                                         (default len 1000), warmed by warmup
//!                                         detailed ops each (default 0); the
//!                                         gaps run functional warming only.
//!                                         IPC becomes `mean ± 95% CI`. Applies
//!                                         to `trace` and `sweep`; mutually
//!                                         exclusive with --observe/--intervals.
//!                                         With --journal, windows append to
//!                                         <journal>.iv.jsonl; with --out (on
//!                                         `trace`), windows are written there.
//!
//! sweep checkpointing (see DESIGN.md § 13):
//!          --ff <n>                       fast-forward each benchmark n committed
//!                                         instructions functionally before timing
//!          --ckpt-dir <path>              publish crash-safe snapshots during
//!                                         fast-forward; restore from the newest
//!                                         valid one on restart (needs --ff)
//!          --ckpt-interval <n>            instructions between snapshots
//!                                         (default: --ff / 4)
//! ```

use std::process::ExitCode;
use std::time::Duration;

use hbat_suite::analysis::{AdjacencyProfile, PointerProfile, ReuseProfile};
use hbat_suite::bench::ckpt::CheckpointOptions;
use hbat_suite::bench::executor::RunPolicy;
use hbat_suite::bench::experiment::{sweep_ft, ExperimentConfig, SweepOptions};
use hbat_suite::bench::faults::FaultPlan;
use hbat_suite::bench::perfdb;
use hbat_suite::bench::sample::{ipc_interval, run_sampled_uops, SamplePlan};
use hbat_suite::ckpt::Snapshot;
use hbat_suite::isa::tracefile;
use hbat_suite::isa::PredecodedTrace;
use hbat_suite::obs::{prof, IntervalRecorder, PortResource, Tee};
use hbat_suite::prelude::*;
use hbat_suite::stats::chart::BarChart;
use hbat_suite::stats::table::TextTable;
use hbat_suite::stats::{ConfLevel, Summary};

struct Options {
    scale: Scale,
    inorder: bool,
    pages_8k: bool,
    small_regs: bool,
    seed: u64,
    journal: Option<std::path::PathBuf>,
    resume: bool,
    timeout: Option<f64>,
    retries: Option<u32>,
    observe: bool,
    intervals: Option<u64>,
    prof: bool,
    heartbeat: Option<f64>,
    out: Option<std::path::PathBuf>,
    ckpt_dir: Option<std::path::PathBuf>,
    ckpt_interval: Option<u64>,
    ff: Option<u64>,
    // Raw `--sample` spec; parsed into a SamplePlan once the seed is
    // known (flag order is free, so the seed may arrive after it).
    sample: Option<String>,
    db: Option<std::path::PathBuf>,
    baseline: Option<std::path::PathBuf>,
    host: Option<String>,
    json: bool,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        scale: Scale::Small,
        inorder: false,
        pages_8k: false,
        small_regs: false,
        seed: 1996,
        journal: None,
        resume: false,
        timeout: None,
        retries: None,
        observe: false,
        intervals: None,
        prof: false,
        heartbeat: None,
        out: None,
        ckpt_dir: None,
        ckpt_interval: None,
        ff: None,
        sample: None,
        db: None,
        baseline: None,
        host: None,
        json: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                o.scale = match v.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "reference" | "ref" => Scale::Reference,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--inorder" => o.inorder = true,
            "--pages-8k" => o.pages_8k = true,
            "--small-regs" => o.small_regs = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--journal" => {
                let v = it.next().ok_or("--journal needs a path")?;
                o.journal = Some(v.into());
            }
            "--resume" => o.resume = true,
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs seconds")?;
                let secs: f64 = v.parse().map_err(|e| format!("bad timeout: {e}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("bad timeout `{v}` (need positive seconds)"));
                }
                o.timeout = Some(secs);
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a count")?;
                o.retries = Some(v.parse().map_err(|e| format!("bad retries: {e}"))?);
            }
            "--observe" => o.observe = true,
            "--intervals" => {
                let v = it
                    .next()
                    .ok_or("--intervals needs a window width in cycles")?;
                let n: u64 = v.parse().map_err(|e| format!("bad interval width: {e}"))?;
                if n < 2 {
                    return Err(format!(
                        "bad interval width `{n}` (need at least 2 cycles per window)"
                    ));
                }
                o.intervals = Some(n);
            }
            "--prof" => o.prof = true,
            "--db" => {
                let v = it.next().ok_or("--db needs a path")?;
                o.db = Some(v.into());
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                o.baseline = Some(v.into());
            }
            "--host" => {
                let v = it.next().ok_or("--host needs a tag")?;
                o.host = Some(v.clone());
            }
            "--heartbeat" => {
                let v = it.next().ok_or("--heartbeat needs seconds (0 = off)")?;
                let secs: f64 = v.parse().map_err(|e| format!("bad heartbeat: {e}"))?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err(format!("bad heartbeat `{v}` (need seconds, 0 = off)"));
                }
                o.heartbeat = Some(secs);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                o.out = Some(v.into());
            }
            "--ckpt-dir" => {
                let v = it.next().ok_or("--ckpt-dir needs a path")?;
                o.ckpt_dir = Some(v.into());
            }
            "--ckpt-interval" => {
                let v = it
                    .next()
                    .ok_or("--ckpt-interval needs an instruction count")?;
                let n: u64 = v.parse().map_err(|e| format!("bad ckpt interval: {e}"))?;
                if n == 0 {
                    return Err("bad ckpt interval `0` (need at least 1 instruction)".to_owned());
                }
                o.ckpt_interval = Some(n);
            }
            "--sample" => {
                let v = it.next().ok_or("--sample needs N[:len[:warmup]]")?;
                o.sample = Some(v.clone());
            }
            "--ff" => {
                let v = it.next().ok_or("--ff needs an instruction count")?;
                o.ff = Some(
                    v.parse()
                        .map_err(|e| format!("bad fast-forward count: {e}"))?,
                );
            }
            "--json" => o.json = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`"));
            }
            pos => o.positional.push(pos.to_owned()),
        }
    }
    Ok(o)
}

impl Options {
    fn experiment(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::baseline(self.scale);
        if self.inorder {
            cfg = cfg.with_inorder();
        }
        if self.pages_8k {
            cfg = cfg.with_8k_pages();
        }
        if self.small_regs {
            cfg = cfg.with_small_regs();
        }
        cfg.design_seed = self.seed;
        cfg
    }

    fn bench(&self, idx: usize) -> Result<Benchmark, String> {
        let name = self
            .positional
            .get(idx)
            .ok_or("missing benchmark name (try `hbat list`)")?;
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `hbat list`)"))
    }

    fn sample_plan(&self) -> Result<Option<SamplePlan>, String> {
        self.sample
            .as_deref()
            .map(|spec| SamplePlan::parse(spec, self.seed))
            .transpose()
    }

    fn design(&self, idx: usize) -> Result<DesignSpec, String> {
        let name = self
            .positional
            .get(idx)
            .ok_or("missing design mnemonic (try `hbat list`)")?;
        DesignSpec::parse(name).map_err(|e| e.to_string())
    }
}

fn print_metrics(design: DesignSpec, m: &RunMetrics) {
    println!(
        "design            : {} ({})",
        design.mnemonic(),
        design.description()
    );
    println!("cycles            : {}", m.cycles);
    println!("IPC (commit)      : {:.3}", m.ipc());
    println!("IPC (issue)       : {:.3}", m.issue_ipc());
    println!("loads / stores    : {} / {}", m.loads, m.stores);
    println!("branch prediction : {:.1}%", m.bpred_rate() * 100.0);
    println!("TLB accesses      : {}", m.tlb.accesses);
    println!("TLB shielded      : {:.1}%", m.tlb.shield_rate() * 100.0);
    println!("TLB miss rate     : {:.3}%", m.tlb.miss_rate() * 100.0);
    println!("port retries      : {}", m.tlb.retries);
    println!("wrong-path xlat   : {}", m.wrong_path_translations);
}

/// Renders a finished interval recorder: per-window table (capped),
/// IPC-over-time chart (downsampled), and summary statistics.
fn print_intervals(iv: &IntervalRecorder) {
    let windows = iv.windows();
    println!(
        "\ninterval telemetry: {} window(s) of {} cycles",
        windows.len(),
        iv.width()
    );
    let opt = |v: Option<f64>, unit: &str| match v {
        Some(v) if unit == "%" => format!("{:5.1}%", v * 100.0),
        Some(v) => format!("{v:.1}"),
        None => "-".to_owned(),
    };
    const MAX_ROWS: usize = 20;
    let mut t = TextTable::new(vec![
        "window", "start", "cycles", "IPC", "tlb hit", "dc hit", "rob avg",
    ]);
    t.numeric();
    for (i, w) in windows.iter().take(MAX_ROWS).enumerate() {
        t.row(vec![
            i.to_string(),
            w.start.to_string(),
            w.cycles.to_string(),
            format!("{:.3}", w.ipc()),
            opt(w.tlb_hit_rate(), "%"),
            opt(w.dcache_hit_rate(), "%"),
            opt(w.rob_mean(), ""),
        ]);
    }
    println!("{}", t.render());
    if windows.len() > MAX_ROWS {
        println!("… ({} more windows)", windows.len() - MAX_ROWS);
    }

    if !windows.is_empty() {
        // At most ~40 bars: a long run strides across its windows.
        let stride = windows.len().div_ceil(40).max(1);
        let mut chart = BarChart::new("IPC over time", 50);
        for w in windows.iter().step_by(stride) {
            chart.bar(&format!("@{}", w.start), w.ipc());
        }
        println!("{}", chart.render());
    }

    let mut ipc = Summary::new();
    let mut tlb = Summary::new();
    for w in windows {
        ipc.push(w.ipc());
        if let Some(h) = w.tlb_hit_rate() {
            tlb.push(h);
        }
    }
    let sum = |s: &Summary, scale: f64, unit: &str| {
        format!(
            "mean {:.3}{unit} stddev {} min {:.3}{unit} max {:.3}{unit}",
            s.mean() * scale,
            match s.stddev() {
                Some(d) => format!("{:.3}{unit}", d * scale),
                None => "-".to_owned(),
            },
            s.min().unwrap_or(0.0) * scale,
            s.max().unwrap_or(0.0) * scale,
        )
    };
    println!("IPC per window    : {}", sum(&ipc, 1.0, ""));
    if tlb.count() > 0 {
        println!("TLB hit rate      : {}", sum(&tlb, 100.0, "%"));
    }
    if iv.dropped_windows() > 0 {
        eprintln!(
            "warning: {} window(s) dropped past the buffer (widen --intervals)",
            iv.dropped_windows()
        );
    }
}

/// Renders a sampled run's measurement windows: per-window table
/// (capped), IPC-per-window chart, and the spread across windows.
fn print_sample_windows(windows: &[hbat_suite::obs::IntervalRecord]) {
    const MAX_ROWS: usize = 20;
    let opt = |v: Option<f64>| match v {
        Some(v) => format!("{:5.1}%", v * 100.0),
        None => "-".to_owned(),
    };
    let mut t = TextTable::new(vec![
        "window",
        "op index",
        "cycles",
        "committed",
        "IPC",
        "tlb hit",
    ]);
    t.numeric();
    for (i, w) in windows.iter().take(MAX_ROWS).enumerate() {
        t.row(vec![
            i.to_string(),
            w.start.to_string(),
            w.cycles.to_string(),
            w.committed.to_string(),
            format!("{:.3}", w.ipc()),
            opt(w.tlb_hit_rate()),
        ]);
    }
    println!("{}", t.render());
    if windows.len() > MAX_ROWS {
        println!("… ({} more windows)", windows.len() - MAX_ROWS);
    }
    if !windows.is_empty() {
        let stride = windows.len().div_ceil(40).max(1);
        let mut chart = BarChart::new("IPC per sampled window", 50);
        for w in windows.iter().step_by(stride) {
            chart.bar(&format!("@{}", w.start), w.ipc());
        }
        println!("{}", chart.render());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: hbat <list|run|trace|sweep|anatomy|dump|replay|ckpt|perfdb> …");
        return ExitCode::FAILURE;
    };
    let opts = match parse_args(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.prof {
        hbat_suite::obs::prof::set_enabled(true);
    }
    let result = run_command(cmd, &opts);
    if hbat_suite::obs::prof::enabled() {
        eprint!("{}", hbat_suite::obs::prof::render_report());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(cmd: &str, opts: &Options) -> Result<(), String> {
    match cmd {
        "list" => {
            println!("designs (Table 2):");
            for d in DesignSpec::TABLE2 {
                println!("  {:<6} {}", d.mnemonic(), d.description());
            }
            println!("\nbenchmarks (Table 3):");
            for b in Benchmark::ALL {
                println!("  {b}");
            }
            Ok(())
        }
        "run" => {
            let bench = opts.bench(0)?;
            let design = opts.design(1)?;
            let cfg = opts.experiment();
            let trace = {
                let _p = prof::scope("trace-build");
                bench.build(&cfg.workload).trace()
            };
            let mut tlb = design.build(cfg.geometry, cfg.design_seed);
            let m = {
                let _p = prof::scope("detailed-run");
                simulate(&cfg.sim, &trace, tlb.as_mut())
            };
            println!("{bench}: {} instructions\n", trace.len());
            print_metrics(design, &m);
            Ok(())
        }
        "trace" => {
            let bench = opts.bench(0)?;
            let design = opts.design(1)?;
            let cfg = opts.experiment();
            let trace = {
                let _p = prof::scope("trace-build");
                bench.build(&cfg.workload).trace()
            };
            if let Some(plan) = opts.sample_plan()? {
                if opts.intervals.is_some() {
                    return Err(
                        "--sample is mutually exclusive with --intervals (pick one window scheme)"
                            .to_owned(),
                    );
                }
                let uops = PredecodedTrace::predecode(&trace);
                let phase = prof::scope("sampled-run");
                let cell = run_sampled_uops(uops.ops(), design, &cfg, None, &plan);
                drop(phase);
                println!(
                    "{bench} on {} ({}): {} instructions, sampled {} (windows:len:warmup)\n",
                    design.mnemonic(),
                    design.description(),
                    trace.len(),
                    plan.render()
                );
                print_sample_windows(&cell.windows);
                let ci = ipc_interval(&cell.windows, ConfLevel::P95);
                let measured: u64 = cell.metrics.committed;
                println!("IPC (95% CI)      : {}", ci.render(3));
                println!(
                    "measured          : {measured} committed micro-ops in {} window(s) \
                     ({:.1}% of the trace's {} micro-ops)",
                    cell.windows.len(),
                    measured as f64 / uops.ops().len().max(1) as f64 * 100.0,
                    uops.ops().len()
                );
                if let Some(path) = &opts.out {
                    let mut out = String::new();
                    for w in &cell.windows {
                        out.push_str(&w.render_json());
                        out.push('\n');
                    }
                    std::fs::write(path, out).map_err(|e| e.to_string())?;
                    println!(
                        "wrote {} sampled windows to {}",
                        cell.windows.len(),
                        path.display()
                    );
                }
                return Ok(());
            }
            let mut tlb = design.build(cfg.geometry, cfg.design_seed);
            // With --intervals the run is recorded twice at once: the
            // event/stall recorder feeds the summary below, the interval
            // recorder the time series — one simulation, statically teed.
            let phase = prof::scope("detailed-run");
            let (m, rec, iv) = match opts.intervals {
                None => {
                    let mut rec = TraceRecorder::new();
                    let m = simulate_with_recorder(&cfg.sim, &trace, tlb.as_mut(), &mut rec);
                    (m, rec, None)
                }
                Some(width) => {
                    let mut tee = Tee::new(TraceRecorder::new(), IntervalRecorder::new(width));
                    let m = simulate_with_recorder(&cfg.sim, &trace, tlb.as_mut(), &mut tee);
                    tee.b.finish();
                    (m, tee.a, Some(tee.b))
                }
            };
            drop(phase);
            println!(
                "{bench} on {} ({}): {} instructions, {} cycles, IPC {:.3}\n",
                design.mnemonic(),
                design.description(),
                trace.len(),
                m.cycles,
                m.ipc()
            );
            let total = m.cycles.max(1) as f64;
            let mut t = TextTable::new(vec!["cycles charged to", "count", "share"]);
            t.numeric();
            let mut chart = BarChart::new("where the cycles went", 50)
                .with_max(1.0)
                .percent();
            let issue_share = rec.issue_cycles() as f64 / total;
            t.row(vec![
                "issue".to_owned(),
                rec.issue_cycles().to_string(),
                format!("{:5.1}%", issue_share * 100.0),
            ]);
            chart.bar("issue", issue_share);
            for (cause, n) in rec.stall_breakdown() {
                let share = n as f64 / total;
                t.row(vec![
                    cause.name().to_owned(),
                    n.to_string(),
                    format!("{:5.1}%", share * 100.0),
                ]);
                chart.bar(cause.name(), share);
            }
            println!("{}", t.render());
            println!("{}", chart.render());
            println!(
                "port conflicts    : tlb {} / dcache {} / icache {}",
                rec.port_conflicts(PortResource::Tlb),
                rec.port_conflicts(PortResource::Dcache),
                rec.port_conflicts(PortResource::Icache)
            );
            println!(
                "page-table walks  : {} ({} cycles)",
                rec.walks(),
                rec.walk_cycles()
            );
            println!(
                "occupancy (max)   : rob {} / lsq {} / mshrs {} / tlb-queue {}",
                rec.rob_occupancy().max_seen(),
                rec.lsq_occupancy().max_seen(),
                rec.mshr_occupancy().max_seen(),
                rec.tlb_queue_occupancy().max_seen()
            );
            if let Some(iv) = &iv {
                print_intervals(iv);
            }
            if let Some(path) = &opts.out {
                match &iv {
                    Some(iv) => {
                        std::fs::write(path, iv.render_jsonl()).map_err(|e| e.to_string())?;
                        println!(
                            "wrote {} interval windows to {} ({} dropped past the buffer)",
                            iv.windows().len(),
                            path.display(),
                            iv.dropped_windows()
                        );
                    }
                    None => {
                        std::fs::write(path, rec.render_jsonl()).map_err(|e| e.to_string())?;
                        println!(
                            "wrote {} events to {} ({} dropped past the buffer)",
                            rec.events().len(),
                            path.display(),
                            rec.dropped_events()
                        );
                    }
                }
            }
            Ok(())
        }
        "sweep" => {
            if opts.resume && opts.journal.is_none() {
                return Err("--resume needs --journal <path>".to_owned());
            }
            if opts.observe && opts.journal.is_none() {
                return Err(
                    "--observe needs --journal <path> (the sidecar lives next to it)".to_owned(),
                );
            }
            if opts.intervals.is_some() && opts.journal.is_none() {
                return Err(
                    "--intervals needs --journal <path> (the sidecar lives next to it)".to_owned(),
                );
            }
            if opts.sample.is_some() && (opts.observe || opts.intervals.is_some()) {
                return Err(
                    "--sample is mutually exclusive with --observe / --intervals \
                     (sampled windows own the interval sidecar)"
                        .to_owned(),
                );
            }
            if opts.ckpt_dir.is_some() && opts.ff.is_none() {
                return Err("--ckpt-dir needs --ff <n> (the fast-forward boundary)".to_owned());
            }
            if opts.ff.is_some() && opts.ckpt_dir.is_none() {
                return Err(
                    "--ff needs --ckpt-dir <path> (fast-forward runs checkpointed)".to_owned(),
                );
            }
            if opts.ckpt_interval.is_some() && opts.ckpt_dir.is_none() {
                return Err("--ckpt-interval needs --ckpt-dir <path>".to_owned());
            }
            let cfg = opts.experiment();
            let mut policy = RunPolicy::from_env();
            if let Some(secs) = opts.timeout {
                policy.timeout = Some(Duration::from_secs_f64(secs));
            }
            if let Some(n) = opts.retries {
                policy.retries = n;
            }
            // Heartbeat resolution: CLI flag > HBAT_HEARTBEAT (already in
            // `policy`) > scale default (off at test scale, 30 s otherwise).
            if let Some(secs) = opts.heartbeat {
                policy.heartbeat = Some(Duration::from_secs_f64(secs));
            }
            if policy.heartbeat.is_none() && opts.scale != Scale::Test {
                policy.heartbeat = Some(Duration::from_secs(30));
            }
            let checkpoint = match (&opts.ckpt_dir, opts.ff) {
                (Some(dir), Some(boundary)) => Some(CheckpointOptions {
                    dir: dir.clone(),
                    interval: opts.ckpt_interval.unwrap_or((boundary / 4).max(1)),
                    boundary,
                }),
                _ => None,
            };
            let sample = opts.sample_plan()?;
            let sweep_opts = SweepOptions {
                threads: 0,
                policy,
                faults: FaultPlan::from_env().unwrap_or_default(),
                journal: opts.journal.clone(),
                resume: opts.resume,
                observe: opts.observe,
                intervals: opts.intervals,
                checkpoint,
                sample,
            };
            let r = sweep_ft(&DesignSpec::TABLE2, &cfg, &sweep_opts).map_err(|e| e.to_string())?;
            if sample.is_some() {
                println!("{}", r.render_sample_figure("design sweep (sampled)"));
                println!("{}", r.render_sample_details());
            } else {
                println!("{}", r.render_figure("design sweep"));
                println!("{}", r.render_details());
            }
            if r.resumed > 0 {
                eprintln!("resumed {} cell(s) from the journal", r.resumed);
            }
            if r.manifest.is_empty() {
                Ok(())
            } else {
                eprintln!("{}", r.manifest.render());
                Err(format!(
                    "{} of {} cell(s) failed{}",
                    r.manifest.len(),
                    r.telemetry.cells,
                    if opts.journal.is_some() {
                        " (re-run with --resume to retry only those)"
                    } else {
                        ""
                    }
                ))
            }
        }
        "anatomy" => {
            let bench = opts.bench(0)?;
            let cfg = opts.experiment();
            let trace = bench.build(&cfg.workload).trace();
            let reuse = ReuseProfile::of_trace(&trace, cfg.geometry);
            let adj = AdjacencyProfile::of_trace(&trace, cfg.geometry, 4);
            let ptr = PointerProfile::of_trace(&trace, cfg.geometry);
            println!("{bench}: {} instructions", trace.len());
            println!("distinct pages        : {}", reuse.distinct_pages());
            for n in [4usize, 8, 16, 64, 128] {
                println!(
                    "LRU-{n:<3} miss rate    : {:.2}%",
                    reuse.lru_miss_rate(n) * 100.0
                );
            }
            println!(
                "combinable (window 4) : {:.1}%",
                adj.combinable_fraction() * 100.0
            );
            println!(
                "pointer-page reuse    : {:.1}%",
                ptr.reuse_fraction() * 100.0
            );
            Ok(())
        }
        "dump" => {
            let bench = opts.bench(0)?;
            let path = opts.positional.get(1).ok_or("missing output path")?;
            let cfg = opts.experiment();
            let trace = bench.build(&cfg.workload).trace();
            let mut f =
                std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| e.to_string())?);
            tracefile::write_trace(&mut f, &trace).map_err(|e| e.to_string())?;
            println!("wrote {} records to {path}", trace.len());
            Ok(())
        }
        "ckpt" => {
            let path = opts.positional.first().ok_or("missing snapshot path")?;
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            // Decode performs the full integrity check (magic, version,
            // length, checksum, structure); any corruption is a typed
            // error and a non-zero exit.
            let snap = Snapshot::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
            let mem_bytes: usize = snap.mem_chunks.iter().map(|(_, c)| c.len()).sum();
            let stored =
                u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte trailer"));
            if opts.json {
                println!(
                    "{{\"v\":{},\"bench\":\"{}\",\"fingerprint\":\"{}\",\"index\":{},\
                     \"bytes\":{},\"checksum\":\"{stored:016x}\",\"mem_chunks\":{},\
                     \"mem_bytes\":{mem_bytes},\"warm_pages\":{},\"warm_tlb\":{},\
                     \"warm_dblocks\":{},\"warm_iblocks\":{},\"bpred_pht\":{},\
                     \"halted\":{}}}",
                    hbat_suite::ckpt::CKPT_VERSION,
                    snap.bench,
                    snap.fingerprint,
                    snap.index,
                    bytes.len(),
                    snap.mem_chunks.len(),
                    snap.warm.pages.len(),
                    snap.warm.tlb.len(),
                    snap.warm.dblocks.len(),
                    snap.warm.iblocks.len(),
                    snap.warm.pht.len(),
                    snap.arch.halted,
                );
            } else {
                println!("snapshot          : {path}");
                println!("version           : {}", hbat_suite::ckpt::CKPT_VERSION);
                println!("benchmark         : {}", snap.bench);
                println!("fingerprint       : {}", snap.fingerprint);
                println!("instruction index : {}", snap.index);
                println!("file size         : {} bytes", bytes.len());
                println!("checksum          : {stored:016x} (verified)");
                println!(
                    "memory            : {} chunk(s), {mem_bytes} bytes",
                    snap.mem_chunks.len()
                );
                println!(
                    "warm state        : {} pages / {} tlb / {} dblocks / {} iblocks",
                    snap.warm.pages.len(),
                    snap.warm.tlb.len(),
                    snap.warm.dblocks.len(),
                    snap.warm.iblocks.len()
                );
                println!("branch predictor  : {} PHT entries", snap.warm.pht.len());
                println!("status            : valid");
            }
            Ok(())
        }
        "replay" => {
            let path = opts.positional.first().ok_or("missing trace path")?;
            let design = opts.design(1)?;
            let mut f =
                std::io::BufReader::new(std::fs::File::open(path).map_err(|e| e.to_string())?);
            let trace = tracefile::read_trace(&mut f).map_err(|e| e.to_string())?;
            let cfg = opts.experiment();
            let mut tlb = design.build(cfg.geometry, cfg.design_seed);
            let m = simulate(&cfg.sim, &trace, tlb.as_mut());
            println!("{path}: {} instructions\n", trace.len());
            print_metrics(design, &m);
            Ok(())
        }
        "perfdb" => {
            let action = opts
                .positional
                .first()
                .ok_or("usage: hbat perfdb <add|check> [reports…]")?;
            // Explicit report paths, or every results/BENCH_*.json.
            let reports: Vec<std::path::PathBuf> = if opts.positional.len() > 1 {
                opts.positional[1..].iter().map(Into::into).collect()
            } else {
                let mut found: Vec<std::path::PathBuf> = std::fs::read_dir("results")
                    .map_err(|e| format!("results/: {e} (pass report paths explicitly)"))?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                    })
                    .collect();
                found.sort();
                found
            };
            if reports.is_empty() {
                return Err("no BENCH_*.json reports found".to_owned());
            }
            match action.as_str() {
                "add" => {
                    let db = opts
                        .db
                        .clone()
                        .unwrap_or_else(|| "results/perf.jsonl".into());
                    let host = perfdb::host_tag(opts.host.as_deref());
                    for report in &reports {
                        perfdb::add_report(report, &db, &host)
                            .map_err(|e| format!("{}: {e}", report.display()))?;
                        println!(
                            "added {} to {} (host {host})",
                            report.display(),
                            db.display()
                        );
                    }
                    Ok(())
                }
                "check" => {
                    let baseline = opts
                        .baseline
                        .clone()
                        .unwrap_or_else(|| "results/perf_baseline.jsonl".into());
                    let checks = perfdb::read_baseline(&baseline)
                        .map_err(|e| format!("{}: {e}", baseline.display()))?;
                    let mut ran = 0usize;
                    let mut failed = 0usize;
                    for report in &reports {
                        let r = perfdb::read_report(report)
                            .map_err(|e| format!("{}: {e}", report.display()))?;
                        for outcome in perfdb::check_report(&r, &checks) {
                            ran += 1;
                            failed += usize::from(!outcome.pass);
                            println!("{}", perfdb::render_outcome(&outcome));
                        }
                    }
                    if ran == 0 {
                        return Err(format!(
                            "no baseline check matched any report ({} check(s) in {})",
                            checks.len(),
                            baseline.display()
                        ));
                    }
                    if failed > 0 {
                        Err(format!("{failed} of {ran} perf check(s) failed"))
                    } else {
                        println!("all {ran} perf check(s) passed");
                        Ok(())
                    }
                }
                other => Err(format!("unknown perfdb action `{other}` (add|check)")),
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
