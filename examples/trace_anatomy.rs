//! Trace anatomy: measure the stream properties each translation design
//! exploits, then check the designs actually deliver against those
//! ceilings.
//!
//! ```sh
//! cargo run --release --example trace_anatomy [benchmark]
//! ```

use hbat_suite::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "Perl".into());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&which))
        .unwrap_or(Benchmark::Perl);
    let trace = bench.build(&WorkloadConfig::new(Scale::Small)).trace();
    let geom = PageGeometry::KB4;

    // Ceilings from the trace alone.
    let reuse = ReuseProfile::of_trace(&trace, geom);
    let adj = AdjacencyProfile::of_trace(&trace, geom, 4);
    let ptr = PointerProfile::of_trace(&trace, geom);
    println!(
        "{bench}: {} instructions, {} pages touched",
        trace.len(),
        reuse.distinct_pages()
    );
    println!(
        "ideal  8-entry LRU shield miss rate : {:.2}%",
        reuse.lru_miss_rate(8) * 100.0
    );
    println!(
        "ideal combiner absorbs (window 4)   : {:.1}%",
        adj.combinable_fraction() * 100.0
    );
    println!(
        "ideal pretranslation reuse          : {:.1}%",
        ptr.reuse_fraction() * 100.0
    );

    // What the real mechanisms achieve.
    let cfg = SimConfig::baseline();
    for mnemonic in ["M8", "PB1", "P8"] {
        let mut tlb = DesignSpec::parse(mnemonic).expect("known").build(geom, 7);
        let m = simulate(&cfg, &trace, tlb.as_mut());
        println!(
            "{:<4} shields {:>5.1}% of its requests (IPC {:.3})",
            mnemonic,
            100.0 * m.tlb.shield_rate(),
            m.ipc()
        );
    }
    println!(
        "\nThe measured shield rates sit below the trace-derived ceilings:\n\
         M8 approaches the LRU-8 hit ceiling, PB1 the combiner ceiling\n\
         (it only combines requests that truly coincide in a cycle), and\n\
         P8 the pointer-reuse ceiling (bounded by its 8-entry cache)."
    );
}
