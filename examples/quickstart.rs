//! Quickstart: build a TLB design, run one benchmark through the timing
//! simulator, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hbat_suite::prelude::*;

fn main() {
    // 1. Pick an address-translation design by its Table-2 mnemonic.
    //    "M8" is a multi-level TLB: an 8-entry LRU L1 shielding a
    //    128-entry single-ported L2.
    let design = DesignSpec::parse("M8").expect("known mnemonic");
    let mut tlb = design.build(PageGeometry::KB4, 1996);

    // 2. Build a workload — the Espresso analogue at a small scale — and
    //    run it functionally to obtain the dynamic instruction trace.
    let workload = Benchmark::Espresso.build(&WorkloadConfig::new(Scale::Small));
    let trace = workload.trace();
    println!("{}: {} dynamic instructions", workload.name, trace.len());

    // 3. Replay the trace on the paper's baseline 8-way out-of-order
    //    machine, translating every data access through the design.
    let metrics = simulate(&SimConfig::baseline(), &trace, tlb.as_mut());

    println!(
        "design            : {} ({})",
        design.mnemonic(),
        design.description()
    );
    println!("cycles            : {}", metrics.cycles);
    println!("IPC               : {:.3}", metrics.ipc());
    println!("loads / stores    : {} / {}", metrics.loads, metrics.stores);
    println!("branch prediction : {:.1}%", metrics.bpred_rate() * 100.0);
    println!("TLB accesses      : {}", metrics.tlb.accesses);
    println!(
        "shielded by L1    : {:.1}% (never reached the L2 TLB)",
        metrics.tlb.shield_rate() * 100.0
    );
    println!(
        "TLB miss rate     : {:.3}%",
        metrics.tlb.miss_rate() * 100.0
    );
    println!("port retries      : {}", metrics.tlb.retries);
}
