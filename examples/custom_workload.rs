//! Writing your own workload: build a program with the `hbat-workloads`
//! assembler, run it functionally, and compare two TLB designs on it.
//!
//! The program below walks a linked list that was deliberately laid out
//! to alternate between two distant memory regions — a pathological
//! pattern for small shielding structures, a friendly one for piggyback
//! ports (the two regions are revisited constantly).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use hbat_core::addr::VirtAddr;
use hbat_isa::inst::{Cond, Width};
use hbat_suite::prelude::*;
use hbat_workloads::builder::Builder;
use hbat_workloads::layout::HEAP_BASE;

fn build_pingpong() -> (hbat_isa::Program, Vec<(u64, Vec<u8>)>) {
    // Two node arenas a megabyte apart; list nodes alternate between them.
    let arena_a = HEAP_BASE;
    let arena_b = HEAP_BASE + (1 << 20);
    let nodes = 4_096u64;
    let node_bytes = 16u64;

    // Lay the list out host-side: node i lives in arena (i % 2), its cdr
    // points at node i+1, the last node's cdr is 0.
    let addr_of = |i: u64| {
        let arena = if i.is_multiple_of(2) {
            arena_a
        } else {
            arena_b
        };
        arena + (i / 2) * node_bytes
    };
    let mut image_a = Vec::new();
    let mut image_b = Vec::new();
    for i in 0..nodes {
        let next = if i + 1 < nodes { addr_of(i + 1) } else { 0 };
        let target = if i % 2 == 0 {
            &mut image_a
        } else {
            &mut image_b
        };
        target.extend_from_slice(&(i * 3).to_le_bytes()); // car: a value
        target.extend_from_slice(&next.to_le_bytes()); // cdr: next node
    }

    let mut b = Builder::new(RegBudget::FULL);
    let node = b.ivar("node");
    let sum = b.ivar("sum");
    let v = b.ivar("v");
    let rounds = b.ivar("rounds");
    b.li(rounds, 24);
    let outer = b.new_label();
    b.bind(outer);
    b.li(node, arena_a as i64);
    b.li(sum, 0);
    let walk = b.new_label();
    let done = b.new_label();
    b.bind(walk);
    b.load(v, node, 0, Width::B8); // car
    b.add(sum, sum, v);
    b.load(node, node, 8, Width::B8); // cdr
    b.br(Cond::Ne, node, 0, walk);
    b.bind(done);
    b.sub(rounds, rounds, 1);
    b.br(Cond::Gt, rounds, 0, outer);

    let program = b.finish().expect("well-formed list walk");
    (program, vec![(arena_a, image_a), (arena_b, image_b)])
}

fn main() {
    let (program, image) = build_pingpong();

    // Functional run for the trace (and a sanity check of the sum).
    let mut machine = Machine::new(program);
    for (base, bytes) in &image {
        machine.memory_mut().write_bytes(VirtAddr(*base), bytes);
    }
    let trace = machine.run_to_vec(3_000_000);
    assert!(machine.is_halted(), "list walk must terminate");
    println!("ping-pong list walk: {} dynamic instructions", trace.len());

    // Consecutive nodes live on different pages, so cross-node requests
    // never combine; the two *within-node* loads do. A tiny L1 TLB holds
    // both arenas' hot pages comfortably.
    let cfg = SimConfig::baseline();
    for mnemonic in ["T4", "T1", "PB1", "M4"] {
        let design = DesignSpec::parse(mnemonic).expect("known design");
        let mut tlb = design.build(PageGeometry::KB4, 7);
        let m = simulate(&cfg, &trace, tlb.as_mut());
        println!(
            "{:<4} cycles {:>8}  IPC {:.3}  shielded {:>5.1}%  retries {:>6}",
            mnemonic,
            m.cycles,
            m.ipc(),
            100.0 * m.tlb.shield_rate(),
            m.tlb.retries
        );
    }
    println!(
        "\nThe serial pointer chase issues about one translation per cycle\n\
         pair, so even T1 mostly keeps up. PB1 combines the car and cdr\n\
         loads of each node (same page, same cycle) but never across nodes\n\
         (alternating pages), while M4's tiny L1 TLB holds both arenas'\n\
         hot pages and shields nearly everything."
    );
}
