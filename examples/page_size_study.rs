//! Page-size study: how page size changes each design family's behaviour
//! (the paper's Section 4.5, generalised beyond 4 KB vs 8 KB).
//!
//! Larger pages let the same number of TLB entries map more memory, give
//! pretranslations longer lifetimes (pointers stride further before
//! leaving a page), and give piggyback ports more combining opportunities.
//!
//! ```sh
//! cargo run --release --example page_size_study
//! ```

use hbat_suite::prelude::*;

fn main() {
    let workload = Benchmark::Compress.build(&WorkloadConfig::new(Scale::Small));
    let trace = workload.trace();
    println!(
        "Compress ({} instructions) across page sizes\n",
        trace.len()
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>11}",
        "design", "pages", "IPC", "miss rate", "shield rate"
    );
    let cfg = SimConfig::baseline();
    for mnemonic in ["T1", "M8", "P8", "PB1"] {
        for page_bits in [12u32, 13, 14] {
            let geom = PageGeometry::new(page_bits);
            let design = DesignSpec::parse(mnemonic).expect("known design");
            let mut tlb = design.build(geom, 1996);
            let m = simulate(&cfg, &trace, tlb.as_mut());
            println!(
                "{:<10} {:>6}KB {:>10.3} {:>9.3}% {:>10.1}%",
                mnemonic,
                1 << (page_bits - 10),
                m.ipc(),
                100.0 * m.tlb.miss_rate(),
                100.0 * m.tlb.shield_rate(),
            );
        }
        println!();
    }
    println!(
        "Bigger pages cut the base-TLB miss rate for every design and\n\
         raise the shield rates of the multi-level, pretranslation, and\n\
         piggyback mechanisms — Figure 8's effect, shown per design."
    );
}
