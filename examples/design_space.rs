//! Design-space exploration: sweep every Table-2 design over one
//! benchmark and print the bandwidth/latency trade-off, a miniature
//! version of the paper's Figure 5 for a single program.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark]
//! ```
//!
//! `benchmark` is a Table-3 program name (default: `Xlisp`).

use hbat_suite::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "Xlisp".into());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{which}`; using Xlisp");
            Benchmark::Xlisp
        });

    let workload = bench.build(&WorkloadConfig::new(Scale::Small));
    let trace = workload.trace();
    println!(
        "{}: {} instructions, sweeping {} designs\n",
        bench,
        trace.len(),
        DesignSpec::TABLE2.len()
    );

    let cfg = SimConfig::baseline();
    let mut t4_cycles = None;
    println!(
        "{:<6} {:>10} {:>8} {:>9} {:>10} {:>9}",
        "design", "cycles", "IPC", "vs T4", "shielded", "retries"
    );
    for design in DesignSpec::TABLE2 {
        let mut tlb = design.build(PageGeometry::KB4, 1996);
        let m = simulate(&cfg, &trace, tlb.as_mut());
        let base = *t4_cycles.get_or_insert(m.cycles);
        println!(
            "{:<6} {:>10} {:>8.3} {:>8.1}% {:>9.1}% {:>9}",
            design.mnemonic(),
            m.cycles,
            m.ipc(),
            100.0 * base as f64 / m.cycles as f64,
            100.0 * m.tlb.shield_rate(),
            m.tlb.retries,
        );
    }

    println!(
        "\nReading the table: `vs T4` is performance relative to the\n\
         four-ported TLB; `shielded` is the fraction of requests served\n\
         without touching the base TLB (L1 TLB hits, pretranslation hits,\n\
         or piggybacked requests); `retries` counts cycles a request\n\
         waited for a translation port."
    );
}
