//! Offline drop-in replacement for the subset of `rand` 0.8 that this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this shim (see `shims/README.md`). It reproduces the
//! exact value streams of rand 0.8.5 for the APIs the simulator relies on:
//!
//! * [`rngs::SmallRng`] — the vendored xoshiro256++ generator, including
//!   the SplitMix64-based `seed_from_u64`;
//! * [`Rng::gen_range`] — Lemire widening-multiply rejection sampling for
//!   integers, the `[1, 2)` mantissa trick for floats;
//! * [`Rng::gen`] via the [`distributions::Standard`] distribution;
//! * [`Rng::gen_bool`] via the fixed-point Bernoulli distribution.
//!
//! Keeping the streams bit-identical matters: the workload generators and
//! random-replacement TLB banks are seeded, and every figure in
//! `results/` was produced from these exact streams.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: uniformly distributed raw bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanded with the same
    /// PCG-based mixer rand_core 0.6 uses by default. Generators that
    /// override this (xoshiro does) must keep their override.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (low inclusive, high exclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        distributions::Bernoulli::new(p)
            .expect("gen_bool probability within [0, 1]")
            .sample(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn small_rng_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(1996);
        let mut b = SmallRng::seed_from_u64(1996);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(97..110);
            assert!((97..110).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n: usize = rng.gen_range(0..13);
            assert!(n < 13);
            let i: i64 = rng.gen_range(-50..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mass() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&heads), "p=0.7 gave {heads}/10000");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
