//! Distributions: `Standard`, `Bernoulli`, and uniform range sampling.
//!
//! Each algorithm reproduces rand 0.8.5 bit-for-bit (see the crate docs
//! for why that matters).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$method() as $ty
            }
        }
    )*};
}

// 8/16/32-bit values come from `next_u32`, wider ones from `next_u64`,
// exactly as rand's `impl_int_from_uint!` does.
standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // The most significant bit, to sidestep weak low bits.
        rng.next_u32() & 0x8000_0000 != 0
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 effective mantissa bits, uniform over [0, 1).
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 effective mantissa bits, uniform over [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error from [`Bernoulli::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BernoulliError {
    /// Probability outside `[0, 1]`.
    InvalidProbability,
}

/// A yes/no distribution with fixed-point probability, as in rand 0.8:
/// `p` is scaled to a 64-bit integer once, then each sample is a single
/// comparison.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Creates the distribution; `p` must be within `[0, 1]`.
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError::InvalidProbability);
        }
        Ok(Bernoulli {
            p_int: (p * SCALE) as u64,
        })
    }
}

impl Distribution<bool> for Bernoulli {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}

/// Uniform range sampling (`Rng::gen_range`).
pub mod uniform {
    use crate::RngCore;

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// A type with a uniform sampler over half-open ranges.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`.
        fn sample_uniform_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_uniform_single(self.start, self.end, rng)
        }
    }

    macro_rules! wmul {
        (u32, $a:expr, $b:expr) => {{
            let w = ($a as u64).wrapping_mul($b as u64);
            ((w >> 32) as u32, w as u32)
        }};
        (u64, $a:expr, $b:expr) => {{
            let w = ($a as u128).wrapping_mul($b as u128);
            ((w >> 64) as u64, w as u64)
        }};
    }

    macro_rules! uniform_int {
        ($ty:ty, $unsigned:ty, $u_large:tt, $gen:ident) => {
            impl SampleUniform for $ty {
                fn sample_uniform_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    // Lemire widening-multiply rejection, rand 0.8 layout:
                    // exact rejection zone for sub-u16 types, the
                    // leading-zeros approximation for wider ones.
                    let range = high.wrapping_sub(low) as $unsigned as $u_large;
                    let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = rng.$gen() as $u_large;
                        let (hi, lo) = wmul!($u_large, v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int!(u8, u8, u32, next_u32);
    uniform_int!(u16, u16, u32, next_u32);
    uniform_int!(u32, u32, u32, next_u32);
    uniform_int!(u64, u64, u64, next_u64);
    uniform_int!(usize, usize, u64, next_u64);
    uniform_int!(i8, u8, u32, next_u32);
    uniform_int!(i16, u16, u32, next_u32);
    uniform_int!(i32, u32, u32, next_u32);
    uniform_int!(i64, u64, u64, next_u64);
    uniform_int!(isize, usize, u64, next_u64);

    macro_rules! uniform_float {
        ($ty:ty, $uty:ty, $gen:ident, $bits_to_discard:expr, $exponent_bias_bits:expr) => {
            impl SampleUniform for $ty {
                fn sample_uniform_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let mut scale = high - low;
                    loop {
                        // A uniform mantissa with exponent 0 is uniform in
                        // [1, 2); shift into [low, high).
                        let bits = rng.$gen() >> $bits_to_discard;
                        let value1_2 = <$ty>::from_bits(bits | ($exponent_bias_bits));
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                        // Rounding put us on the boundary (vanishingly
                        // rare for finite ranges): shrink scale one ULP.
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }
            }
        };
    }

    uniform_float!(f32, u32, next_u32, 32 - 23, 127u32 << 23);
    uniform_float!(f64, u64, next_u64, 64 - 52, 1023u64 << 52);
}
