//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast generator: xoshiro256++, exactly as vendored by
/// rand 0.8 for 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // rand's xoshiro256++ derives u32s from the high half.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        SmallRng { s }
    }

    /// SplitMix64 seed expansion — the xoshiro-specific override rand
    /// ships (NOT the rand_core PCG default).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        // An all-zero xoshiro state would be a fixed point; from_seed must
        // divert it to the seed_from_u64(0) state.
        let z = SmallRng::from_seed([0u8; 32]);
        let s = SmallRng::seed_from_u64(0);
        assert_eq!(z, s);
        assert_ne!(z.s, [0u64; 4]);
    }

    #[test]
    fn known_splitmix_expansion() {
        // First SplitMix64 output for state 0 is the well-known constant.
        let r = SmallRng::seed_from_u64(0);
        assert_eq!(r.s[0], 0xe220a8397b1dcdaf);
    }
}
