//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this shim (see `shims/README.md`). It keeps
//! criterion's API shape (`criterion_group!`, benchmark groups,
//! `iter`/`iter_batched`, throughput annotation) over a simple wall-clock
//! harness:
//!
//! * under `cargo bench` (cargo passes `--bench`), each benchmark is
//!   warmed up and then timed over an adaptive iteration count, and the
//!   median per-iteration time plus derived throughput is printed;
//! * under `cargo test` (no `--bench` argument), each benchmark body runs
//!   exactly once as a smoke test, so the tier-1 suite stays fast.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; the shim accepts every variant and
/// runs one setup per measured batch regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine input: many iterations per batch in real criterion.
    SmallInput,
    /// Large routine input: few iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// Explicit batch count.
    NumBatches(u64),
    /// Explicit iteration count.
    NumIterations(u64),
}

/// Work-per-iteration annotation, used to derive a rate column.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Bytes, reported in decimal multiples.
    BytesDecimal(u64),
}

/// True when invoked by `cargo bench` (which passes `--bench`); false
/// under `cargo test`, where benches run once as smoke tests.
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Runs `routine` repeatedly and reports the median per-iteration time.
struct Sampler {
    /// Target wall time per benchmark when measuring.
    budget: Duration,
    samples: usize,
}

impl Sampler {
    fn new(samples: usize) -> Self {
        Sampler {
            budget: Duration::from_millis(300),
            samples: samples.max(5),
        }
    }

    /// Times `f` (which runs the routine once) and returns the median
    /// iteration time, or `None` in smoke mode.
    fn run(&self, mut f: impl FnMut()) -> Option<Duration> {
        if !measuring() {
            f();
            return None;
        }
        // Warm up and estimate a per-iteration cost.
        let start = Instant::now();
        f();
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.budget / self.samples as u32).max(Duration::from_micros(50));
        let iters_per_sample = (per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 100_000);
        let mut medians: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            medians.push(t0.elapsed() / iters_per_sample as u32);
        }
        medians.sort_unstable();
        Some(medians[medians.len() / 2])
    }
}

/// The per-benchmark timing callback target.
pub struct Bencher<'a> {
    sampler: &'a Sampler,
    result: Option<Duration>,
}

impl Bencher<'_> {
    /// Times the routine as-is.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.result = self.sampler.run(|| {
            black_box(routine());
        });
    }

    /// Times the routine with a fresh setup value per call; setup time is
    /// excluded in real criterion but simply kept small here by the
    /// caller's convention.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.result = self.sampler.run(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

fn report(group: &str, id: &str, result: Option<Duration>, throughput: Option<Throughput>) {
    let Some(t) = result else {
        println!("{group}/{id}: ok (smoke)");
        return;
    };
    let nanos = t.as_nanos().max(1);
    let rate = throughput.map(|tp| match tp {
        Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 * 1e3 / nanos as f64),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" ({:.3} MB/s)", n as f64 * 1e3 / nanos as f64)
        }
    });
    println!(
        "{group}/{id}: {:.3} µs/iter{}",
        nanos as f64 / 1e3,
        rate.unwrap_or_default()
    );
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (measurement granularity in the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sampler = Sampler::new(self.sample_size);
        let mut bencher = Bencher {
            sampler: &sampler,
            result: None,
        };
        let mut f = f;
        f(&mut bencher);
        report(&self.name, &id, bencher.result, self.throughput);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.to_owned();
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Declares a group-runner function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
