//! Offline replacement for `serde_derive`.
//!
//! The build environment has no access to crates.io, so `syn`/`quote` are
//! unavailable and this macro parses the derive input token stream by hand.
//! It supports exactly the shapes this workspace derives on:
//!
//! * tuple structs (any arity; arity 1 serializes as a newtype struct),
//! * named-field structs,
//! * enums whose variants are all unit variants.
//!
//! `Serialize` impls drive the real serde data model; `Deserialize` impls
//! only satisfy trait bounds and error at runtime (see `shims/serde`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive target.
enum Input {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let source = match parse(input) {
        Ok(parsed) => gen(&parsed),
        Err(msg) => format!("::std::compile_error!({msg:?});"),
    };
    source
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                     -> ::std::result::Result<S::Ok, S::Error> {{\n\
                     ::serde::Serializer::serialize_newtype_struct(serializer, {name:?}, &self.0)\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let mut body = format!(
                "let mut state = ::serde::Serializer::serialize_tuple_struct(\
                     serializer, {name:?}, {arity})?;\n"
            );
            for i in 0..*arity {
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{i})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(state)");
            wrap_serialize(name, &body)
        }
        Input::NamedStruct { name, fields } => {
            let mut body = format!(
                "let mut state = ::serde::Serializer::serialize_struct(\
                     serializer, {name:?}, {})?;\n",
                fields.len()
            );
            for f in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, {f:?}, &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(state)");
            wrap_serialize(name, &body)
        }
        Input::UnitEnum { name, variants } => {
            let mut body = String::from("match self {\n");
            for (i, v) in variants.iter().enumerate() {
                body.push_str(&format!(
                    "{name}::{v} => ::serde::Serializer::serialize_unit_variant(\
                         serializer, {name:?}, {i}u32, {v:?}),\n"
                ));
            }
            body.push('}');
            wrap_serialize(name, &body)
        }
    }
}

fn wrap_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = match input {
        Input::NamedStruct { name, .. }
        | Input::TupleStruct { name, .. }
        | Input::UnitEnum { name, .. } => name,
    };
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::de::Deserializer<'de>>(_deserializer: D)\n\
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"the offline serde shim does not implement deserialization\"))\n\
             }}\n\
         }}"
    )
}

/// A cursor over the top-level token trees of the derive input.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes any run of `#[...]` attributes (doc comments included).
    fn skip_attributes(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.pos += 1; // '#'
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.pos += 1;
            }
        }
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` etc. if present.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde_derive shim: expected identifier, got {other:?}"
            )),
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor {
        tokens: input.into_iter().collect(),
        pos: 0,
    };
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }
    match keyword.as_str() {
        "struct" => parse_struct(&mut cur, name),
        "enum" => parse_enum(&mut cur, name),
        other => Err(format!("serde_derive shim: cannot derive on `{other}`")),
    }
}

fn parse_struct(cur: &mut Cursor, name: String) -> Result<Input, String> {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Input::NamedStruct { name, fields })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            Ok(Input::TupleStruct { name, arity })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            // Unit struct: serialize as a zero-arity tuple struct would be
            // wrong; serde treats it as serialize_unit_struct, but nothing
            // in this workspace derives on one, so reject loudly.
            Err(format!(
                "serde_derive shim: unit struct `{name}` is not supported"
            ))
        }
        other => Err(format!("serde_derive shim: unexpected token {other:?}")),
    }
}

/// Extracts field names from `{ pub a: T, b: U, ... }`, skipping the types
/// (which may contain angle-bracketed or parenthesised commas).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor {
        tokens: stream.into_iter().collect(),
        pos: 0,
    };
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            return Ok(fields);
        }
        cur.skip_visibility();
        fields.push(cur.expect_ident()?);
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde_derive shim: expected `:` after field name, got {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Groups arrive as single trees, so only `<`/`>` need tracking.
        let mut depth = 0i32;
        loop {
            match cur.peek() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => {
                            cur.pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    cur.pos += 1;
                }
                Some(_) => cur.pos += 1,
            }
        }
    }
}

/// Counts fields in `(pub A, B, ...)` by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    saw_token = true;
                }
                '>' => {
                    depth -= 1;
                    saw_token = true;
                }
                ',' if depth == 0 => {
                    fields += 1;
                    saw_token = false;
                }
                _ => saw_token = true,
            },
            _ => saw_token = true,
        }
    }
    if saw_token {
        fields += 1; // no trailing comma after the last field
    }
    fields
}

fn parse_enum(cur: &mut Cursor, name: String) -> Result<Input, String> {
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => Err(format!(
            "serde_derive shim: expected enum body, got {other:?}"
        ))?,
    };
    let mut cur = Cursor {
        tokens: body.into_iter().collect(),
        pos: 0,
    };
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            return Ok(Input::UnitEnum { name, variants });
        }
        let variant = cur.expect_ident()?;
        match cur.next() {
            // Unit variant followed by `,` or end of body.
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            None => {
                variants.push(variant);
                return Ok(Input::UnitEnum { name, variants });
            }
            // `= discriminant`: skip the expression up to the next comma.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                loop {
                    match cur.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => cur.pos += 1,
                    }
                }
                cur.next(); // the comma, if any
                variants.push(variant);
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive shim: enum `{name}` has a non-unit variant `{variant}`"
                ))
            }
            other => {
                return Err(format!(
                    "serde_derive shim: unexpected token in enum `{name}`: {other:?}"
                ))
            }
        }
    }
}
