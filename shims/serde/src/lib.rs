//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `serde` to this shim (see `shims/README.md`). Serialization
//! is fully functional over serde's data model (primitives, newtype
//! structs, field structs, unit variants — everything the `#[derive]`d
//! types in this workspace produce). Deserialization is declared but not
//! implemented: derived `Deserialize` impls exist (so `DeserializeOwned`
//! bounds compile) and return an error when invoked, since nothing in
//! this workspace deserializes yet.

pub mod de;
pub mod ser;

pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub use de::Deserialize;

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
