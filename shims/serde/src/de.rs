//! The deserialization half: declared so `Deserialize` bounds compile,
//! not implemented — nothing in this workspace deserializes yet. Derived
//! impls return [`Error::custom`] when invoked.

use std::fmt::Display;

/// Deserializer-side error constraint.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

impl Error for std::fmt::Error {
    fn custom<T: Display>(_msg: T) -> Self {
        std::fmt::Error
    }
}

/// A source of serde's data model. The shim defines no driving methods
/// because no deserializer exists offline; the associated error type is
/// what derived impls report through.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
}

/// A deserializable value.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
