//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`: vectors of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
