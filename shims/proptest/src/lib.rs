//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this shim (see `shims/README.md`). It keeps the
//! same programming model — composable [`strategy::Strategy`] values, the
//! [`proptest!`] macro, `prop_assert*` — but runs plain seeded random
//! testing without shrinking: each failing case reports the case number
//! and the generated inputs are reproducible from the fixed seed
//! schedule.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The [`Arbitrary`] trait: a canonical strategy per type.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy ([`crate::strategy::any`]).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// The canonical strategy for the type.
        fn any() -> Any<Self> {
            Any::new()
        }
    }

    macro_rules! arb_int {
        ($($ty:ty),* $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$ty>()
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection::vec(...)` etc., as in the real prelude.
    pub use crate as prop;
}

/// Runs the test cases. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header, then `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Picks one of the given strategies uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a proptest body, failing the current case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}
