//! Test execution support: configuration, the per-case RNG, and the error
//! type `prop_assert!` produces.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many cases `proptest!` runs per property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases (mirrors
    /// `ProptestConfig::with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline CI fast while still
        // exercising the generators broadly.
        Config { cases: 64 }
    }
}

/// The generator handed to strategies. Deterministic: case `n` of every
/// test function draws from the same stream on every run, so failures
/// reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for one numbered case.
    pub fn for_case(case: u32) -> Self {
        TestRng(SmallRng::seed_from_u64(
            0x5eed_cafe_0000_0000 ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property case (no shrinking in the shim: the message carries
/// the assertion text).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
