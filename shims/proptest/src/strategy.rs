//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::sync::Arc;

use rand::Rng;

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Canonical whole-type strategy; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy generating any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

macro_rules! range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
